package msglog

import (
	"testing"
	"testing/quick"

	"ssbyz/internal/protocol"
	"ssbyz/internal/simtime"
)

var supKey = Key{Kind: protocol.Support, G: 0, M: "v"}

func TestKeyOf(t *testing.T) {
	cases := []struct {
		name string
		msg  protocol.Message
		want Key
	}{
		{
			"support drops P and K",
			protocol.Message{Kind: protocol.Support, G: 1, M: "x", P: 5, K: 3},
			Key{Kind: protocol.Support, G: 1, M: "x"},
		},
		{
			"echo keeps the triple",
			protocol.Message{Kind: protocol.Echo, G: 1, M: "x", P: 5, K: 3},
			Key{Kind: protocol.Echo, G: 1, M: "x", P: 5, K: 3},
		},
		{
			"initiator drops P and K",
			protocol.Message{Kind: protocol.Initiator, G: 2, M: "y", P: 9, K: 9},
			Key{Kind: protocol.Initiator, G: 2, M: "y"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := KeyOf(tc.msg); got != tc.want {
				t.Errorf("KeyOf = %+v, want %+v", got, tc.want)
			}
		})
	}
}

func TestRecordKeepsLatestPerSender(t *testing.T) {
	l := New(0)
	l.Record(supKey, 1, 100)
	l.Record(supKey, 1, 200) // same sender: replaces
	l.Record(supKey, 2, 150)
	if got := l.CountWithin(supKey, 10, 205); got != 1 {
		t.Errorf("CountWithin(10)@205 = %d, want 1 (only sender 1's latest)", got)
	}
	if got := l.CountWithin(supKey, 100, 205); got != 2 {
		t.Errorf("CountWithin(100)@205 = %d, want 2", got)
	}
	if got := l.Len(); got != 2 {
		t.Errorf("Len = %d, want 2", got)
	}
}

func TestCountWithinIgnoresFuture(t *testing.T) {
	l := New(0)
	l.Record(supKey, 1, 500) // future relative to now=400
	if got := l.CountWithin(supKey, 1000, 400); got != 0 {
		t.Errorf("future record counted: %d", got)
	}
	if got := l.CountAll(supKey, 400); got != 0 {
		t.Errorf("CountAll counted future record: %d", got)
	}
}

func TestCountAll(t *testing.T) {
	l := New(0)
	l.Record(supKey, 1, 10)
	l.Record(supKey, 2, 9000)
	if got := l.CountAll(supKey, 10000); got != 2 {
		t.Errorf("CountAll = %d, want 2 regardless of age", got)
	}
}

func TestHas(t *testing.T) {
	l := New(0)
	if l.Has(supKey, 1) {
		t.Error("Has on empty log")
	}
	l.Record(supKey, 1, 10)
	if !l.Has(supKey, 1) {
		t.Error("Has missed a recorded sender")
	}
	if l.Has(supKey, 2) {
		t.Error("Has found a never-recorded sender")
	}
}

func TestKthNewest(t *testing.T) {
	l := New(0)
	l.Record(supKey, 1, 100)
	l.Record(supKey, 2, 300)
	l.Record(supKey, 3, 200)
	now := simtime.Local(400)
	cases := []struct {
		k      int
		want   simtime.Local
		wantOK bool
	}{
		{1, 300, true},
		{2, 200, true},
		{3, 100, true},
		{4, 0, false},
		{0, 0, false},
		{-1, 0, false},
	}
	for _, tc := range cases {
		got, ok := l.KthNewest(supKey, tc.k, now)
		if ok != tc.wantOK || (ok && got != tc.want) {
			t.Errorf("KthNewest(%d) = (%d,%v), want (%d,%v)", tc.k, got, ok, tc.want, tc.wantOK)
		}
	}
}

// TestKthNewestWindowSemantics: now − KthNewest(c) is the minimal α such
// that [now−α, now] holds ≥ c distinct senders — the Block L1 condition.
func TestKthNewestWindowSemantics(t *testing.T) {
	l := New(0)
	times := []simtime.Local{50, 80, 90, 95}
	for i, at := range times {
		l.Record(supKey, protocol.NodeID(i), at)
	}
	now := simtime.Local(100)
	tc, ok := l.KthNewest(supKey, 3, now)
	if !ok || tc != 80 {
		t.Fatalf("KthNewest(3) = (%d,%v), want (80,true)", tc, ok)
	}
	alpha := now.Sub(tc)
	if got := l.CountWithin(supKey, alpha, now); got < 3 {
		t.Errorf("window [now−α, now] holds %d senders, want ≥ 3", got)
	}
	if got := l.CountWithin(supKey, alpha-1, now); got >= 3 {
		t.Errorf("α is not minimal: window α−1 still holds %d", got)
	}
}

func TestDecayOlderThan(t *testing.T) {
	l := New(0)
	l.Record(supKey, 1, 100)
	l.Record(supKey, 2, 500)
	l.Record(supKey, 3, 2000) // future at now=1000 → removed too
	l.DecayOlderThan(600, 1000)
	if l.Has(supKey, 1) {
		t.Error("record older than maxAge survived decay")
	}
	if !l.Has(supKey, 2) {
		t.Error("fresh record removed by decay")
	}
	if l.Has(supKey, 3) {
		t.Error("future-stamped record survived decay")
	}
}

func TestDecayRemovesEmptyKeys(t *testing.T) {
	l := New(0)
	l.Record(supKey, 1, 10)
	l.DecayOlderThan(5, 1000)
	if got := len(l.Keys()); got != 0 {
		t.Errorf("empty key survived: %d keys", got)
	}
}

func TestRemoveMatching(t *testing.T) {
	l := New(0)
	keyA := Key{Kind: protocol.Support, G: 0, M: "a"}
	keyB := Key{Kind: protocol.Support, G: 0, M: "b"}
	l.Record(keyA, 1, 10)
	l.Record(keyB, 1, 10)
	l.RemoveMatching(func(k Key) bool { return k.M == "a" })
	if l.Has(keyA, 1) {
		t.Error("matching key survived RemoveMatching")
	}
	if !l.Has(keyB, 1) {
		t.Error("non-matching key removed")
	}
}

func TestSendersAndKeys(t *testing.T) {
	l := New(0)
	l.Record(supKey, 3, 10)
	l.Record(supKey, 7, 20)
	senders := l.Senders(supKey)
	if len(senders) != 2 {
		t.Fatalf("Senders = %v, want 2 entries", senders)
	}
	seen := map[protocol.NodeID]bool{}
	for _, s := range senders {
		seen[s] = true
	}
	if !seen[3] || !seen[7] {
		t.Errorf("Senders = %v, want {3,7}", senders)
	}
	if got := len(l.Keys()); got != 1 {
		t.Errorf("Keys = %d, want 1", got)
	}
}

func TestClear(t *testing.T) {
	l := New(0)
	l.Record(supKey, 1, 10)
	l.Clear()
	if l.Len() != 0 || len(l.Keys()) != 0 {
		t.Error("Clear left records behind")
	}
}

func TestWrappedWindowAcrossZero(t *testing.T) {
	const wrap = 1000
	l := New(wrap)
	l.Record(supKey, 1, 990) // before the wrap
	now := simtime.Local(5)  // after the wrap: age 15
	if got := l.CountWithin(supKey, 20, now); got != 1 {
		t.Errorf("wrapped record not counted: %d", got)
	}
	if got := l.CountWithin(supKey, 10, now); got != 0 {
		t.Errorf("wrapped record counted outside window: %d", got)
	}
	at, ok := l.KthNewest(supKey, 1, now)
	if !ok || at != 990 {
		t.Errorf("wrapped KthNewest = (%d,%v), want (990,true)", at, ok)
	}
}

// TestCountNeverExceedsDistinctSenders is the key quorum-safety property:
// no window query may ever count one sender twice.
func TestCountNeverExceedsDistinctSenders(t *testing.T) {
	f := func(events []struct {
		Sender uint8
		At     uint16
	}, width uint16, nowRaw uint16) bool {
		l := New(0)
		distinct := map[protocol.NodeID]bool{}
		for _, e := range events {
			l.Record(supKey, protocol.NodeID(e.Sender), simtime.Local(e.At))
			distinct[protocol.NodeID(e.Sender)] = true
		}
		return l.CountWithin(supKey, simtime.Duration(width), simtime.Local(nowRaw)) <= len(distinct)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestWindowMonotonicProperty: widening the window never lowers the count.
func TestWindowMonotonicProperty(t *testing.T) {
	f := func(events []struct {
		Sender uint8
		At     uint16
	}, w1, w2 uint16) bool {
		l := New(0)
		for _, e := range events {
			l.Record(supKey, protocol.NodeID(e.Sender), simtime.Local(e.At))
		}
		lo, hi := simtime.Duration(w1), simtime.Duration(w2)
		if lo > hi {
			lo, hi = hi, lo
		}
		now := simtime.Local(1 << 15)
		return l.CountWithin(supKey, lo, now) <= l.CountWithin(supKey, hi, now)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
