package msglog

import (
	"testing"
	"testing/quick"

	"ssbyz/internal/protocol"
	"ssbyz/internal/simtime"
)

var supKey = Key{Kind: protocol.Support, G: 0, M: "v"}

func TestKeyOf(t *testing.T) {
	cases := []struct {
		name string
		msg  protocol.Message
		want Key
	}{
		{
			"support drops P and K",
			protocol.Message{Kind: protocol.Support, G: 1, M: "x", P: 5, K: 3},
			Key{Kind: protocol.Support, G: 1, M: "x"},
		},
		{
			"echo keeps the triple",
			protocol.Message{Kind: protocol.Echo, G: 1, M: "x", P: 5, K: 3},
			Key{Kind: protocol.Echo, G: 1, M: "x", P: 5, K: 3},
		},
		{
			"initiator drops P and K",
			protocol.Message{Kind: protocol.Initiator, G: 2, M: "y", P: 9, K: 9},
			Key{Kind: protocol.Initiator, G: 2, M: "y"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := KeyOf(tc.msg); got != tc.want {
				t.Errorf("KeyOf = %+v, want %+v", got, tc.want)
			}
		})
	}
}

func TestRecordKeepsLatestPerSender(t *testing.T) {
	l := New(0)
	l.Record(supKey, 1, 100)
	l.Record(supKey, 1, 200) // same sender: replaces
	l.Record(supKey, 2, 150)
	if got := l.CountWithin(supKey, 10, 205); got != 1 {
		t.Errorf("CountWithin(10)@205 = %d, want 1 (only sender 1's latest)", got)
	}
	if got := l.CountWithin(supKey, 100, 205); got != 2 {
		t.Errorf("CountWithin(100)@205 = %d, want 2", got)
	}
	if got := l.Len(); got != 2 {
		t.Errorf("Len = %d, want 2", got)
	}
}

func TestCountWithinIgnoresFuture(t *testing.T) {
	l := New(0)
	l.Record(supKey, 1, 500) // future relative to now=400
	if got := l.CountWithin(supKey, 1000, 400); got != 0 {
		t.Errorf("future record counted: %d", got)
	}
	if got := l.CountAll(supKey, 400); got != 0 {
		t.Errorf("CountAll counted future record: %d", got)
	}
}

func TestCountAll(t *testing.T) {
	l := New(0)
	l.Record(supKey, 1, 10)
	l.Record(supKey, 2, 9000)
	if got := l.CountAll(supKey, 10000); got != 2 {
		t.Errorf("CountAll = %d, want 2 regardless of age", got)
	}
}

func TestHas(t *testing.T) {
	l := New(0)
	if l.Has(supKey, 1) {
		t.Error("Has on empty log")
	}
	l.Record(supKey, 1, 10)
	if !l.Has(supKey, 1) {
		t.Error("Has missed a recorded sender")
	}
	if l.Has(supKey, 2) {
		t.Error("Has found a never-recorded sender")
	}
}

func TestKthNewest(t *testing.T) {
	l := New(0)
	l.Record(supKey, 1, 100)
	l.Record(supKey, 2, 300)
	l.Record(supKey, 3, 200)
	now := simtime.Local(400)
	cases := []struct {
		k      int
		want   simtime.Local
		wantOK bool
	}{
		{1, 300, true},
		{2, 200, true},
		{3, 100, true},
		{4, 0, false},
		{0, 0, false},
		{-1, 0, false},
	}
	for _, tc := range cases {
		got, ok := l.KthNewest(supKey, tc.k, now)
		if ok != tc.wantOK || (ok && got != tc.want) {
			t.Errorf("KthNewest(%d) = (%d,%v), want (%d,%v)", tc.k, got, ok, tc.want, tc.wantOK)
		}
	}
}

// TestKthNewestWindowSemantics: now − KthNewest(c) is the minimal α such
// that [now−α, now] holds ≥ c distinct senders — the Block L1 condition.
func TestKthNewestWindowSemantics(t *testing.T) {
	l := New(0)
	times := []simtime.Local{50, 80, 90, 95}
	for i, at := range times {
		l.Record(supKey, protocol.NodeID(i), at)
	}
	now := simtime.Local(100)
	tc, ok := l.KthNewest(supKey, 3, now)
	if !ok || tc != 80 {
		t.Fatalf("KthNewest(3) = (%d,%v), want (80,true)", tc, ok)
	}
	alpha := now.Sub(tc)
	if got := l.CountWithin(supKey, alpha, now); got < 3 {
		t.Errorf("window [now−α, now] holds %d senders, want ≥ 3", got)
	}
	if got := l.CountWithin(supKey, alpha-1, now); got >= 3 {
		t.Errorf("α is not minimal: window α−1 still holds %d", got)
	}
}

func TestDecayOlderThan(t *testing.T) {
	l := New(0)
	l.Record(supKey, 1, 100)
	l.Record(supKey, 2, 500)
	l.Record(supKey, 3, 2000) // future at now=1000 → removed too
	l.DecayOlderThan(600, 1000)
	if l.Has(supKey, 1) {
		t.Error("record older than maxAge survived decay")
	}
	if !l.Has(supKey, 2) {
		t.Error("fresh record removed by decay")
	}
	if l.Has(supKey, 3) {
		t.Error("future-stamped record survived decay")
	}
}

func TestDecayRemovesEmptyKeys(t *testing.T) {
	l := New(0)
	l.Record(supKey, 1, 10)
	l.DecayOlderThan(5, 1000)
	if got := len(l.Keys()); got != 0 {
		t.Errorf("empty key survived: %d keys", got)
	}
}

func TestRemoveMatching(t *testing.T) {
	l := New(0)
	keyA := Key{Kind: protocol.Support, G: 0, M: "a"}
	keyB := Key{Kind: protocol.Support, G: 0, M: "b"}
	l.Record(keyA, 1, 10)
	l.Record(keyB, 1, 10)
	l.RemoveMatching(func(k Key) bool { return k.M == "a" })
	if l.Has(keyA, 1) {
		t.Error("matching key survived RemoveMatching")
	}
	if !l.Has(keyB, 1) {
		t.Error("non-matching key removed")
	}
}

func TestSendersAndKeys(t *testing.T) {
	l := New(0)
	l.Record(supKey, 3, 10)
	l.Record(supKey, 7, 20)
	senders := l.Senders(supKey)
	if len(senders) != 2 {
		t.Fatalf("Senders = %v, want 2 entries", senders)
	}
	seen := map[protocol.NodeID]bool{}
	for _, s := range senders {
		seen[s] = true
	}
	if !seen[3] || !seen[7] {
		t.Errorf("Senders = %v, want {3,7}", senders)
	}
	if got := len(l.Keys()); got != 1 {
		t.Errorf("Keys = %d, want 1", got)
	}
}

func TestClear(t *testing.T) {
	l := New(0)
	l.Record(supKey, 1, 10)
	l.Clear()
	if l.Len() != 0 || len(l.Keys()) != 0 {
		t.Error("Clear left records behind")
	}
}

func TestWrappedWindowAcrossZero(t *testing.T) {
	const wrap = 1000
	l := New(wrap)
	l.Record(supKey, 1, 990) // before the wrap
	now := simtime.Local(5)  // after the wrap: age 15
	if got := l.CountWithin(supKey, 20, now); got != 1 {
		t.Errorf("wrapped record not counted: %d", got)
	}
	if got := l.CountWithin(supKey, 10, now); got != 0 {
		t.Errorf("wrapped record counted outside window: %d", got)
	}
	at, ok := l.KthNewest(supKey, 1, now)
	if !ok || at != 990 {
		t.Errorf("wrapped KthNewest = (%d,%v), want (990,true)", at, ok)
	}
}

// TestCountNeverExceedsDistinctSenders is the key quorum-safety property:
// no window query may ever count one sender twice.
func TestCountNeverExceedsDistinctSenders(t *testing.T) {
	f := func(events []struct {
		Sender uint8
		At     uint16
	}, width uint16, nowRaw uint16) bool {
		l := New(0)
		distinct := map[protocol.NodeID]bool{}
		for _, e := range events {
			l.Record(supKey, protocol.NodeID(e.Sender), simtime.Local(e.At))
			distinct[protocol.NodeID(e.Sender)] = true
		}
		return l.CountWithin(supKey, simtime.Duration(width), simtime.Local(nowRaw)) <= len(distinct)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestWrappedKthNewestAcrossZero: shortest-interval queries stay exact
// when the window of interest straddles the wrap point and includes
// several senders on both sides of it.
func TestWrappedKthNewestAcrossZero(t *testing.T) {
	const wrap = 1000
	l := New(wrap)
	l.Record(supKey, 1, 970) // oldest, before the wrap
	l.Record(supKey, 2, 990) // before the wrap
	l.Record(supKey, 3, 10)  // after the wrap
	l.Record(supKey, 4, 20)  // newest
	now := simtime.Local(30)
	wants := []struct {
		k    int
		want simtime.Local
	}{{1, 20}, {2, 10}, {3, 990}, {4, 970}}
	for _, tc := range wants {
		got, ok := l.KthNewest(supKey, tc.k, now)
		if !ok || got != tc.want {
			t.Errorf("KthNewest(%d) = (%d,%v), want (%d,true)", tc.k, got, ok, tc.want)
		}
	}
	if _, ok := l.KthNewest(supKey, 5, now); ok {
		t.Error("KthNewest(5) found a fifth sender")
	}
	if got := l.CountWithin(supKey, 45, now); got != 3 {
		t.Errorf("CountWithin(45) across the wrap = %d, want 3", got)
	}
}

// TestWrappedFutureResidueIgnored: transient residue stamped "ahead" of
// the local clock (in wrap terms) must be invisible to every window query
// and to KthNewest, exactly as with a non-wrapping clock.
func TestWrappedFutureResidueIgnored(t *testing.T) {
	const wrap = 1 << 20
	l := New(wrap)
	now := simtime.Local(5000)
	l.Record(supKey, 1, 4900)                          // legitimate
	l.InjectRaw(supKey, 2, now+200)                    // near future
	l.InjectRaw(supKey, 3, simtime.Local(wrap/2+4000)) // far side of the circle
	if got := l.CountWithin(supKey, wrap/2-1, now); got != 1 {
		t.Errorf("CountWithin counted future residue: %d, want 1", got)
	}
	if got := l.CountAll(supKey, now); got != 1 {
		t.Errorf("CountAll counted future residue: %d, want 1", got)
	}
	if at, ok := l.KthNewest(supKey, 1, now); !ok || at != 4900 {
		t.Errorf("KthNewest(1) = (%d,%v), want (4900,true)", at, ok)
	}
	if _, ok := l.KthNewest(supKey, 2, now); ok {
		t.Error("KthNewest(2) reached into future residue")
	}
	// Decay removes the clearly-wrong records and keeps the fresh one.
	l.DecayOlderThan(1000, now)
	if l.Has(supKey, 2) || l.Has(supKey, 3) {
		t.Error("future residue survived decay")
	}
	if !l.Has(supKey, 1) {
		t.Error("legitimate record removed by decay")
	}
}

// TestDecayWrappedAgedRecords: decay measures age through the wrap, so a
// record written just before the wrap point is still "recent" right after
// it, while genuinely old records go.
func TestDecayWrappedAgedRecords(t *testing.T) {
	const wrap = 1000
	l := New(wrap)
	l.Record(supKey, 1, 600) // age 405 at now=5 → decayed
	l.Record(supKey, 2, 980) // age 25 at now=5 → kept
	l.DecayOlderThan(100, 5)
	if l.Has(supKey, 1) {
		t.Error("aged wrapped record survived decay")
	}
	if !l.Has(supKey, 2) {
		t.Error("recent wrapped record removed by decay")
	}
	if got := l.Len(); got != 1 {
		t.Errorf("Len after decay = %d, want 1", got)
	}
}

// TestRecordReplaceOutOfOrder: a sender's latest reception wins even when
// receptions arrive out of timestamp order (InjectRaw residue), and the
// replaced record never resurfaces in queries.
func TestRecordReplaceOutOfOrder(t *testing.T) {
	l := New(0)
	l.Record(supKey, 1, 500)
	l.Record(supKey, 2, 300)
	l.Record(supKey, 1, 100) // same sender, earlier stamp: still replaces
	if got := l.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	if got := l.CountWithin(supKey, 1000, 600); got != 2 {
		t.Errorf("CountWithin = %d, want 2", got)
	}
	if at, ok := l.KthNewest(supKey, 2, 600); !ok || at != 100 {
		t.Errorf("KthNewest(2) = (%d,%v), want (100,true)", at, ok)
	}
	if got := l.CountWithin(supKey, 150, 600); got != 0 {
		t.Errorf("replaced record at 500 still visible: count %d", got)
	}
}

// TestKeysDeterministicOrder: keys enumerate in first-recording order
// (maps would be random), which downstream fixed-point evaluators rely on
// for reproducible message emission order.
func TestKeysDeterministicOrder(t *testing.T) {
	l := New(0)
	keys := []Key{
		{Kind: protocol.Support, G: 0, M: "c"},
		{Kind: protocol.Support, G: 0, M: "a"},
		{Kind: protocol.Approve, G: 0, M: "b"},
	}
	for i, k := range keys {
		l.Record(k, protocol.NodeID(i), simtime.Local(10*i))
	}
	got := l.Keys()
	if len(got) != len(keys) {
		t.Fatalf("Keys = %v, want %d entries", got, len(keys))
	}
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatalf("Keys order = %v, want %v", got, keys)
		}
	}
	var walked []Key
	l.ForEachKey(func(k Key) { walked = append(walked, k) })
	for i := range keys {
		if walked[i] != keys[i] {
			t.Fatalf("ForEachKey order = %v, want %v", walked, keys)
		}
	}
	l.RemoveMatching(func(k Key) bool { return k.M == "c" })
	got = l.Keys()
	if len(got) != 2 || got[0] != keys[1] || got[1] != keys[2] {
		t.Fatalf("Keys after RemoveMatching = %v, want [a b]", got)
	}
}

// refLog is the naive map-based reference model of the log semantics: one
// latest record per sender, ages via WrapSub.
type refLog map[protocol.NodeID]simtime.Local

func (r refLog) countWithin(width simtime.Duration, now simtime.Local, wrap simtime.Duration) int {
	n := 0
	for _, at := range r {
		age := simtime.WrapSub(now, at, wrap)
		if age >= 0 && age <= width {
			n++
		}
	}
	return n
}

// TestDifferentialVsReference drives the sorted-slice implementation and
// the reference model with the same pseudo-random schedule of records,
// decays, and queries, and requires identical answers throughout. The
// schedule keeps live timestamps within wrap/2 of the query instant — the
// regime in which the log contracts exactness (the paper's wrap premise).
func TestDifferentialVsReference(t *testing.T) {
	const wrap = 1 << 16
	l := New(wrap)
	ref := refLog{}
	x := int64(42)
	next := func(mod int64) int64 {
		x = (x*6364136223846793005 + 1442695040888963407) & (1<<62 - 1)
		return x % mod
	}
	now := simtime.Local(0)
	for step := 0; step < 5000; step++ {
		now = simtime.WrapAdd(now, simtime.Duration(next(50)), wrap)
		switch next(10) {
		case 0, 1, 2, 3, 4, 5: // record, slightly jittered into the past
			sender := protocol.NodeID(next(40))
			at := simtime.WrapAdd(now, -simtime.Duration(next(2000)), wrap)
			l.Record(supKey, sender, at)
			ref[sender] = at
		case 6, 7: // window queries
			width := simtime.Duration(next(4000))
			if got, want := l.CountWithin(supKey, width, now), ref.countWithin(width, now, wrap); got != want {
				t.Fatalf("step %d: CountWithin(%d)@%d = %d, want %d", step, width, now, got, want)
			}
			if got, want := l.CountAll(supKey, now), ref.countWithin(1<<30, now, wrap); got != want {
				t.Fatalf("step %d: CountAll@%d = %d, want %d", step, now, got, want)
			}
		case 8: // k-th newest vs reference minimal window
			k := int(next(10)) + 1
			at, ok := l.KthNewest(supKey, k, now)
			nonFuture := ref.countWithin(1<<30, now, wrap)
			if ok != (nonFuture >= k) {
				t.Fatalf("step %d: KthNewest(%d) ok=%v with %d senders", step, k, ok, nonFuture)
			}
			if ok {
				alpha := simtime.WrapSub(now, at, wrap)
				if got := ref.countWithin(alpha, now, wrap); got < k {
					t.Fatalf("step %d: window α=%d holds %d < k=%d", step, alpha, got, k)
				}
				if alpha > 0 {
					if got := ref.countWithin(alpha-1, now, wrap); got >= k {
						t.Fatalf("step %d: α=%d not minimal (%d ≥ k=%d at α−1)", step, alpha, got, k)
					}
				}
			}
		case 9: // decay
			maxAge := simtime.Duration(next(3000))
			l.DecayOlderThan(maxAge, now)
			for sender, at := range ref {
				age := simtime.WrapSub(now, at, wrap)
				if age < 0 || age > maxAge {
					delete(ref, sender)
				}
			}
			if got := l.Len(); got != len(ref) {
				t.Fatalf("step %d: Len after decay = %d, want %d", step, got, len(ref))
			}
		}
	}
}

// TestWindowMonotonicProperty: widening the window never lowers the count.
func TestWindowMonotonicProperty(t *testing.T) {
	f := func(events []struct {
		Sender uint8
		At     uint16
	}, w1, w2 uint16) bool {
		l := New(0)
		for _, e := range events {
			l.Record(supKey, protocol.NodeID(e.Sender), simtime.Local(e.At))
		}
		lo, hi := simtime.Duration(w1), simtime.Duration(w2)
		if lo > hi {
			lo, hi = hi, lo
		}
		now := simtime.Local(1 << 15)
		return l.CountWithin(supKey, lo, now) <= l.CountWithin(supKey, hi, now)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
