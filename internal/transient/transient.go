// Package transient implements the transient-fault injector: it places the
// system in an arbitrary state at the moment the network becomes coherent
// (virtual time 0 of a run), exactly the situation the paper's
// self-stabilization property quantifies over. "When the system eventually
// returns to behave according to the presumed assumptions, each node may
// be in an arbitrary state."
//
// The injector corrupts, per node and driven by a seeded RNG:
//
//   - Initiator-Accept state: i_values entries, lastq(G), lastq(G,m),
//     ready flags, and spurious reception records (including
//     future-stamped ones);
//   - msgd-broadcast state: phantom anchors, broadcasters, and records;
//   - agreement control state: instances that believe they are mid-
//     agreement or already returned, phantom Block-S level records;
//   - General-side sending-validity bookkeeping;
//   - the network: spurious in-flight messages (with forged senders —
//     residue of the faulty network) that arrive within the first d.
package transient

import (
	"math/rand"

	"ssbyz/internal/core"
	"ssbyz/internal/protocol"
	"ssbyz/internal/simnet"
	"ssbyz/internal/simtime"
)

// Config controls the injection.
type Config struct {
	// Seed drives the corruption (independent of the world seed).
	Seed int64
	// Severity in [0,1] scales the probability of each corruption class
	// being applied to each node. 1 corrupts everything everywhere.
	Severity float64
	// Values is the pool of garbage values (default: three fixed values).
	Values []protocol.Value
	// SkewRange bounds the random offsets of garbage timestamps around the
	// node's local time, in ticks (default 4·Δrmv, both past and future).
	SkewRange simtime.Duration
	// InFlight is the number of spurious deliveries per node scheduled in
	// the first d (default 2n).
	InFlight int
}

// Corrupt applies the injection to every correct node of the world. Call
// it after the world is assembled and before Start.
func Corrupt(w *simnet.World, cfg Config) {
	pp := w.Params()
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Severity == 0 {
		cfg.Severity = 1
	}
	if len(cfg.Values) == 0 {
		cfg.Values = []protocol.Value{"ghost-a", "ghost-b", "ghost-c"}
	}
	if cfg.SkewRange == 0 {
		cfg.SkewRange = 4 * pp.DeltaRmv()
	}
	if cfg.InFlight == 0 {
		cfg.InFlight = 2 * pp.N
	}

	hit := func() bool { return rng.Float64() < cfg.Severity }
	randVal := func() protocol.Value { return cfg.Values[rng.Intn(len(cfg.Values))] }
	randNode := func() protocol.NodeID { return protocol.NodeID(rng.Intn(pp.N)) }
	randSkew := func() simtime.Duration {
		return simtime.Duration(rng.Int63n(2*int64(cfg.SkewRange)+1)) - cfg.SkewRange
	}

	for id := 0; id < pp.N; id++ {
		node, ok := w.Node(protocol.NodeID(id)).(*core.Node)
		if !ok || node == nil {
			continue
		}
		// The node has not started yet; the runtime still answers Now().
		rtNow := w.LocalNow(protocol.NodeID(id))

		// Pick a few Generals to plant garbage for.
		for gi := 0; gi < 1+rng.Intn(3); gi++ {
			g := randNode()
			inst := instanceBeforeStart(node, w, protocol.NodeID(id), g)
			if inst == nil {
				continue
			}
			ia := inst.IA()
			if hit() {
				ia.InjectIValue(randVal(), rtNow+simtime.Local(randSkew()))
			}
			if hit() {
				ia.InjectLastG(rtNow + simtime.Local(randSkew()))
			}
			if hit() {
				ia.InjectLastGM(randVal(), rtNow+simtime.Local(randSkew()))
			}
			if hit() {
				ia.InjectReady(randVal(), rtNow+simtime.Local(randSkew()))
			}
			for i := 0; i < 3*pp.F; i++ {
				if hit() {
					kinds := []protocol.MsgKind{protocol.Support, protocol.Approve, protocol.Ready}
					ia.InjectRecord(kinds[rng.Intn(len(kinds))], randVal(), randNode(), rtNow+simtime.Local(randSkew()))
				}
			}
			if hit() {
				ia.InjectPending(randVal(), rtNow+simtime.Local(randSkew()))
			}

			bc := inst.BC()
			if hit() {
				bc.InjectAnchor(rtNow + simtime.Local(randSkew()))
			}
			if hit() {
				bc.InjectBroadcaster(randNode())
			}
			for i := 0; i < 2*pp.F; i++ {
				if hit() {
					kinds := []protocol.MsgKind{protocol.Echo, protocol.InitPrime, protocol.EchoPrime}
					m := protocol.Message{G: g, M: randVal(), P: randNode(), K: rng.Intn(2*pp.F + 2)}
					bc.InjectRecord(kinds[rng.Intn(len(kinds))], m, randNode(), rtNow+simtime.Local(randSkew()))
				}
			}

			// Agreement control state.
			switch rng.Intn(4) {
			case 0:
				if hit() {
					inst.CorruptMidAgreement(rtNow+simtime.Local(randSkew()), randVal())
				}
			case 1:
				if hit() {
					inst.CorruptReturned(rtNow+simtime.Local(randSkew()), rng.Intn(2) == 0, randVal())
				}
			case 2:
				if hit() {
					inst.CorruptLevel(randVal(), 1+rng.Intn(pp.F+1), randNode(), rtNow+simtime.Local(randSkew()))
				}
			}
		}
		if hit() {
			node.CorruptGeneralState(rtNow+simtime.Local(randSkew()), rtNow+simtime.Local(randSkew()))
		}

		// Spurious in-flight messages: residue of the incoherent network,
		// arriving within the first d. Senders are forged — these were
		// "sent" while the network was still faulty.
		for i := 0; i < cfg.InFlight; i++ {
			if !hit() {
				continue
			}
			kinds := []protocol.MsgKind{
				protocol.Initiator, protocol.Support, protocol.Approve, protocol.Ready,
				protocol.Init, protocol.Echo, protocol.InitPrime, protocol.EchoPrime,
			}
			m := protocol.Message{
				Kind: kinds[rng.Intn(len(kinds))],
				G:    randNode(),
				M:    randVal(),
				P:    randNode(),
				K:    rng.Intn(2*pp.F + 2),
				From: randNode(),
			}
			w.InjectDelivery(protocol.NodeID(id), m, simtime.Real(rng.Int63n(int64(pp.D))))
		}
	}
}

// instanceBeforeStart creates the per-General instance on a node that has
// not started yet. core.Node.Instance requires a runtime; we attach it
// here exactly as Start would, without arming the sweep (Start will).
func instanceBeforeStart(node *core.Node, w *simnet.World, id, g protocol.NodeID) *core.Instance {
	return node.InstanceWithRuntime(w.Runtime(id), g)
}
