// Package transient implements the transient-fault injector: it places the
// system in an arbitrary state at the moment the network becomes coherent
// (virtual time 0 of a run), exactly the situation the paper's
// self-stabilization property quantifies over. "When the system eventually
// returns to behave according to the presumed assumptions, each node may
// be in an arbitrary state."
//
// The injector corrupts, per node and driven by a seeded RNG:
//
//   - Initiator-Accept state: i_values entries, lastq(G), lastq(G,m),
//     ready flags, and spurious reception records (including
//     future-stamped ones);
//   - msgd-broadcast state: phantom anchors, broadcasters, and records;
//   - agreement control state: instances that believe they are mid-
//     agreement or already returned, phantom Block-S level records;
//   - General-side sending-validity bookkeeping;
//   - the network: spurious in-flight messages (with forged senders —
//     residue of the faulty network) that arrive within the first d.
package transient

import (
	"math/rand"

	"ssbyz/internal/core"
	"ssbyz/internal/protocol"
	"ssbyz/internal/simnet"
	"ssbyz/internal/simtime"
)

// Config controls the injection.
type Config struct {
	// Seed drives the corruption (independent of the world seed).
	Seed int64
	// Severity in [0,1] scales the probability of each corruption class
	// being applied to each node. 1 corrupts everything everywhere.
	Severity float64
	// Values is the pool of garbage values (default: three fixed values).
	Values []protocol.Value
	// SkewRange bounds the random offsets of garbage timestamps around the
	// node's local time, in ticks (default 4·Δrmv, both past and future).
	SkewRange simtime.Duration
	// InFlight is the number of spurious deliveries per node scheduled in
	// the first d (default 2n).
	InFlight int
	// Marks lists Generals every corrupted node gets a phantom "already
	// returned, decided ghost-mark" record planted for — a deterministic
	// observable for re-stabilization measurement: the recovery sweep
	// must clear the phantom (the node's Result for the General stops
	// claiming a return) within Δstb, so a campaign can time the
	// convergence the paper's self-stabilization property promises.
	Marks []protocol.NodeID
}

// MarkValue is the phantom decided value planted for every Config.Marks
// General.
const MarkValue = protocol.Value("ghost-mark")

// withDefaults resolves the zero-value conventions against the
// protocol constants.
func (cfg Config) withDefaults(pp protocol.Params) Config {
	if cfg.Severity == 0 {
		cfg.Severity = 1
	}
	if len(cfg.Values) == 0 {
		cfg.Values = []protocol.Value{"ghost-a", "ghost-b", "ghost-c"}
	}
	if cfg.SkewRange == 0 {
		cfg.SkewRange = 4 * pp.DeltaRmv()
	}
	if cfg.InFlight == 0 {
		cfg.InFlight = 2 * pp.N
	}
	return cfg
}

// Corrupt applies the injection to every correct node of the world. Call
// it after the world is assembled and before Start.
func Corrupt(w *simnet.World, cfg Config) {
	pp := w.Params()
	rng := rand.New(rand.NewSource(cfg.Seed))
	cfg = cfg.withDefaults(pp)
	for id := 0; id < pp.N; id++ {
		node, ok := w.Node(protocol.NodeID(id)).(*core.Node)
		if !ok || node == nil {
			continue
		}
		nid := protocol.NodeID(id)
		// The node has not started yet; the runtime still answers Now().
		rtNow := w.LocalNow(nid)
		corruptNode(rng, pp, cfg, node, rtNow,
			func(g protocol.NodeID) *core.Instance {
				// core.Node.Instance requires a runtime; attach it exactly as
				// Start would, without arming the sweep (Start will).
				return node.InstanceWithRuntime(w.Runtime(nid), g)
			},
			func(m protocol.Message) {
				w.InjectDelivery(nid, m, simtime.Real(rng.Int63n(int64(pp.D))))
			})
	}
}

// CorruptRunning applies the same per-node arbitrary-state injection to
// ONE node that is already running — the live form of the transient
// fault, corrupting a daemon or in-process cluster node mid-run. The
// caller MUST invoke it inside the node's event loop (Cluster.DoWait,
// or the daemon's mailbox): the injections touch protocol state the
// loop owns, and the spurious messages are delivered synchronously as
// if they had just arrived from the (still-faulty) network.
func CorruptRunning(node *core.Node, pp protocol.Params, cfg Config, rtNow simtime.Local) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	cfg = cfg.withDefaults(pp)
	corruptNode(rng, pp, cfg, node, rtNow,
		func(g protocol.NodeID) *core.Instance {
			// A started node owns its runtime; nil means "keep it".
			return node.InstanceWithRuntime(nil, g)
		},
		func(m protocol.Message) {
			// Burn the delay draw the sim path makes (keeps the corruption
			// sequence of a shared seed comparable), then deliver now.
			_ = rng.Int63n(int64(pp.D))
			node.OnMessage(m.From, m)
		})
}

// corruptNode is the per-node corruption core shared by the pre-start
// (simulator) and mid-run (live) paths: seeded garbage across IA state,
// broadcast state, agreement control state, General bookkeeping, and
// spurious forged-sender deliveries. instance materializes the
// per-General instance; deliver schedules one spurious message.
func corruptNode(rng *rand.Rand, pp protocol.Params, cfg Config, node *core.Node,
	rtNow simtime.Local, instance func(protocol.NodeID) *core.Instance,
	deliver func(protocol.Message)) {
	hit := func() bool { return rng.Float64() < cfg.Severity }
	randVal := func() protocol.Value { return cfg.Values[rng.Intn(len(cfg.Values))] }
	randNode := func() protocol.NodeID { return protocol.NodeID(rng.Intn(pp.N)) }
	randSkew := func() simtime.Duration {
		return simtime.Duration(rng.Int63n(2*int64(cfg.SkewRange)+1)) - cfg.SkewRange
	}

	{
		// Pick a few Generals to plant garbage for.
		for gi := 0; gi < 1+rng.Intn(3); gi++ {
			g := randNode()
			inst := instance(g)
			if inst == nil {
				continue
			}
			ia := inst.IA()
			if hit() {
				ia.InjectIValue(randVal(), rtNow+simtime.Local(randSkew()))
			}
			if hit() {
				ia.InjectLastG(rtNow + simtime.Local(randSkew()))
			}
			if hit() {
				ia.InjectLastGM(randVal(), rtNow+simtime.Local(randSkew()))
			}
			if hit() {
				ia.InjectReady(randVal(), rtNow+simtime.Local(randSkew()))
			}
			for i := 0; i < 3*pp.F; i++ {
				if hit() {
					kinds := []protocol.MsgKind{protocol.Support, protocol.Approve, protocol.Ready}
					ia.InjectRecord(kinds[rng.Intn(len(kinds))], randVal(), randNode(), rtNow+simtime.Local(randSkew()))
				}
			}
			if hit() {
				ia.InjectPending(randVal(), rtNow+simtime.Local(randSkew()))
			}

			bc := inst.BC()
			if hit() {
				bc.InjectAnchor(rtNow + simtime.Local(randSkew()))
			}
			if hit() {
				bc.InjectBroadcaster(randNode())
			}
			for i := 0; i < 2*pp.F; i++ {
				if hit() {
					kinds := []protocol.MsgKind{protocol.Echo, protocol.InitPrime, protocol.EchoPrime}
					m := protocol.Message{G: g, M: randVal(), P: randNode(), K: rng.Intn(2*pp.F + 2)}
					bc.InjectRecord(kinds[rng.Intn(len(kinds))], m, randNode(), rtNow+simtime.Local(randSkew()))
				}
			}

			// Agreement control state.
			switch rng.Intn(4) {
			case 0:
				if hit() {
					inst.CorruptMidAgreement(rtNow+simtime.Local(randSkew()), randVal())
				}
			case 1:
				if hit() {
					inst.CorruptReturned(rtNow+simtime.Local(randSkew()), rng.Intn(2) == 0, randVal())
				}
			case 2:
				if hit() {
					inst.CorruptLevel(randVal(), 1+rng.Intn(pp.F+1), randNode(), rtNow+simtime.Local(randSkew()))
				}
			}
		}
		if hit() {
			node.CorruptGeneralState(rtNow+simtime.Local(randSkew()), rtNow+simtime.Local(randSkew()))
		}

		// Spurious in-flight messages: residue of the incoherent network,
		// arriving within the first d. Senders are forged — these were
		// "sent" while the network was still faulty.
		for i := 0; i < cfg.InFlight; i++ {
			if !hit() {
				continue
			}
			kinds := []protocol.MsgKind{
				protocol.Initiator, protocol.Support, protocol.Approve, protocol.Ready,
				protocol.Init, protocol.Echo, protocol.InitPrime, protocol.EchoPrime,
			}
			m := protocol.Message{
				Kind: kinds[rng.Intn(len(kinds))],
				G:    randNode(),
				M:    randVal(),
				P:    randNode(),
				K:    rng.Intn(2*pp.F + 2),
				From: randNode(),
			}
			deliver(m)
		}
	}

	// Deterministic observables, planted last so the random draws above
	// are identical whether or not marks are requested: a phantom
	// "already returned" record per marked General, which only the
	// recovery sweep can clear.
	for _, g := range cfg.Marks {
		if inst := instance(g); inst != nil {
			inst.CorruptReturned(rtNow, true, MarkValue)
		}
	}
}
