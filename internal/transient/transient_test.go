package transient

import (
	"testing"

	"ssbyz/internal/core"
	"ssbyz/internal/protocol"
	"ssbyz/internal/simnet"
	"ssbyz/internal/simtime"
)

// corruptedWorld assembles n correct nodes and applies Corrupt before
// Start, exactly as a scenario would.
func corruptedWorld(t *testing.T, n int, seed int64, cfg Config) (*simnet.World, []*core.Node) {
	t.Helper()
	pp := protocol.DefaultParams(n)
	w, err := simnet.New(simnet.Config{Params: pp, Seed: seed, DelayMin: pp.D / 2, DelayMax: pp.D})
	if err != nil {
		t.Fatalf("simnet.New: %v", err)
	}
	nodes := make([]*core.Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = core.NewNode()
		w.SetNode(protocol.NodeID(i), nodes[i])
	}
	Corrupt(w, cfg)
	w.Start()
	return w, nodes
}

func TestCorruptPlantsGarbage(t *testing.T) {
	_, nodes := corruptedWorld(t, 7, 1, Config{Seed: 1, Severity: 1})
	planted := 0
	for _, n := range nodes {
		for _, g := range n.Instances() {
			inst := n.Instance(g)
			planted += inst.IA().LogLen()
		}
		if len(n.Instances()) > 0 {
			planted++
		}
	}
	if planted == 0 {
		t.Error("full-severity corruption planted nothing")
	}
}

func TestCorruptDeterministicPerSeed(t *testing.T) {
	count := func(seed int64) int {
		_, nodes := corruptedWorld(t, 7, 42, Config{Seed: seed, Severity: 1})
		total := 0
		for _, n := range nodes {
			for _, g := range n.Instances() {
				total += n.Instance(g).IA().LogLen()
			}
		}
		return total
	}
	if count(5) != count(5) {
		t.Error("same corruption seed produced different garbage")
	}
}

func TestSeverityZeroDefaultsToFull(t *testing.T) {
	// Severity 0 is documented to mean "default" (= 1): corruption happens.
	_, nodes := corruptedWorld(t, 7, 2, Config{Seed: 3})
	any := false
	for _, n := range nodes {
		if len(n.Instances()) > 0 {
			any = true
		}
	}
	if !any {
		t.Error("default severity corrupted nothing")
	}
}

// TestSystemRecoversAfterCorruption is the package-level convergence
// check: after Δstb, a correct General's agreement must complete with
// every correct node deciding.
func TestSystemRecoversAfterCorruption(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		w, nodes := corruptedWorld(t, 7, seed, Config{Seed: seed + 100, Severity: 1})
		pp := w.Params()
		at := simtime.Real(pp.DeltaStb() + 2*pp.D)
		var initErr error
		w.Scheduler().At(at, func() { initErr = nodes[0].InitiateAgreement("post") })
		w.RunUntil(at + simtime.Real(3*pp.DeltaAgr()))
		if initErr != nil {
			t.Errorf("seed %d: initiation after Δstb refused: %v", seed, initErr)
			continue
		}
		for i, n := range nodes {
			if returned, decided, v := n.Result(0); !returned || !decided || v != "post" {
				t.Errorf("seed %d node %d: (%v,%v,%q), want decide post", seed, i, returned, decided, v)
			}
		}
	}
}

// TestNoSpuriousDecisionBeforeAnyInitiation: corruption alone (including
// its spurious in-flight messages) must never produce a decision — the
// unforgeability side of self-stabilization.
func TestNoSpuriousDecisionWithValidityWindow(t *testing.T) {
	for _, seed := range []int64{4, 5, 6} {
		w, _ := corruptedWorld(t, 7, seed, Config{Seed: seed + 200, Severity: 1})
		pp := w.Params()
		w.RunUntil(simtime.Real(pp.DeltaStb()))
		for _, ev := range w.Recorder().ByKind(protocol.EvDecide) {
			// Residual garbage may drive early aborts, but a decide needs a
			// full message wave no transient residue can fake past Δrmv.
			if ev.RT > simtime.Real(pp.DeltaRmv()+pp.DeltaAgr()) {
				t.Errorf("seed %d: decision at %d long after residue must have decayed", seed, ev.RT)
			}
		}
	}
}

func TestCorruptCustomConfig(t *testing.T) {
	cfg := Config{
		Seed:      9,
		Severity:  0.5,
		Values:    []protocol.Value{"x"},
		SkewRange: 1000,
		InFlight:  3,
	}
	w, _ := corruptedWorld(t, 4, 9, cfg)
	pp := w.Params()
	// Just exercise the custom-config path to quiescence.
	w.RunUntil(simtime.Real(pp.DeltaStb()))
}
