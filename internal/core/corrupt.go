package core

import (
	"ssbyz/internal/protocol"
	"ssbyz/internal/simtime"
)

// This file exposes the control-state injection hooks used exclusively by
// the transient-fault injector: a transient failure may leave the
// agreement layer itself in an arbitrary configuration, and convergence
// must be demonstrated from all of them.

// CorruptMidAgreement puts the instance into a state as if it were in the
// middle of an agreement anchored at tauG with candidate value m —
// without any of the supporting messages having existed. Deadline timers
// are deliberately NOT armed (the transient wiped them); the stabilization
// backstop in cleanup must recover the instance.
func (inst *Instance) CorruptMidAgreement(tauG simtime.Local, m protocol.Value) {
	inst.tauGSet = true
	inst.tauG = tauG
	inst.anchoredAt = tauG
	inst.iaValue = m
	inst.invoked = true
	inst.bc.InjectAnchor(tauG)
}

// CorruptReturned marks the instance as already returned at returnedAt,
// with no reset timer pending — the "stuck forever" configuration the
// cleanup backstop must clear.
func (inst *Instance) CorruptReturned(returnedAt simtime.Local, decided bool, v protocol.Value) {
	inst.returned = true
	inst.returnedAt = returnedAt
	inst.decided = decided
	inst.retValue = v
}

// CorruptLevel plants a phantom accepted broadcast (p, ⟨G,m⟩, k) at local
// time at, as transient residue in the Block S bookkeeping.
func (inst *Instance) CorruptLevel(m protocol.Value, k int, p protocol.NodeID, at simtime.Local) {
	byLevel, ok := inst.levels[m]
	if !ok {
		byLevel = make(map[int]map[protocol.NodeID]levelRec)
		inst.levels[m] = byLevel
	}
	senders, ok := byLevel[k]
	if !ok {
		senders = make(map[protocol.NodeID]levelRec)
		byLevel[k] = senders
	}
	senders[p] = levelRec{at: at}
}

// InstanceWithRuntime attaches rt (when the node has not started yet) and
// returns the instance for g. The transient injector runs before Start and
// needs instances to plant garbage in; Start later re-attaches the same
// runtime and arms the sweep as usual.
func (n *Node) InstanceWithRuntime(rt protocol.Runtime, g protocol.NodeID) *Instance {
	if n.rt == nil {
		n.rt = rt
		n.pp = rt.Params()
	}
	return n.Instance(g)
}

// Instances returns the Generals with live instances (transient injector
// and tests).
func (n *Node) Instances() []protocol.NodeID {
	out := make([]protocol.NodeID, 0, len(n.insts))
	for g := range n.insts {
		out = append(out, g)
	}
	return out
}

// CorruptGeneralState scrambles the General-side sending-validity
// bookkeeping (IG1–IG3 timers), as a transient fault would.
func (n *Node) CorruptGeneralState(lastInit simtime.Local, backoffUntil simtime.Local) {
	n.hasInit = true
	n.lastInit = lastInit
	n.backoff = true
	n.backoffUntil = backoffUntil
}
