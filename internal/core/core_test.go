package core

import (
	"errors"
	"testing"

	"ssbyz/internal/protocol"
	"ssbyz/internal/simnet"
	"ssbyz/internal/simtime"
)

// world assembles n correct nodes and returns the world plus the nodes.
func world(t *testing.T, n int, seed int64) (*simnet.World, []*Node) {
	t.Helper()
	pp := protocol.DefaultParams(n)
	w, err := simnet.New(simnet.Config{Params: pp, Seed: seed, DelayMin: pp.D / 2, DelayMax: pp.D})
	if err != nil {
		t.Fatalf("simnet.New: %v", err)
	}
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = NewNode()
		w.SetNode(protocol.NodeID(i), nodes[i])
	}
	w.Start()
	return w, nodes
}

func TestInitiateBeforeStart(t *testing.T) {
	n := NewNode()
	if err := n.InitiateAgreement("v"); err == nil {
		t.Error("InitiateAgreement on an unstarted node succeeded")
	}
}

func TestInitiateBottomRefused(t *testing.T) {
	w, nodes := world(t, 4, 1)
	_ = w
	if err := nodes[0].InitiateAgreement(protocol.Bottom); err == nil {
		t.Error("InitiateAgreement(⊥) succeeded")
	}
}

func TestHappyPathAllDecide(t *testing.T) {
	w, nodes := world(t, 7, 2)
	pp := w.Params()
	w.Scheduler().At(simtime.Real(2*pp.D), func() {
		if err := nodes[0].InitiateAgreement("x"); err != nil {
			t.Errorf("InitiateAgreement: %v", err)
		}
	})
	w.RunUntil(simtime.Real(3 * pp.DeltaAgr()))
	for i, n := range nodes {
		returned, decided, v := n.Result(0)
		if !returned || !decided || v != "x" {
			t.Errorf("node %d: (%v,%v,%q), want decide x", i, returned, decided, v)
		}
	}
}

func TestIG1SpacingEnforced(t *testing.T) {
	w, nodes := world(t, 4, 3)
	pp := w.Params()
	var second error
	w.Scheduler().At(simtime.Real(2*pp.D), func() {
		if err := nodes[0].InitiateAgreement("a"); err != nil {
			t.Errorf("first initiation: %v", err)
		}
		second = nodes[0].InitiateAgreement("b") // immediate: IG1
	})
	w.RunUntil(simtime.Real(pp.DeltaAgr()))
	if !errors.Is(second, ErrTooSoon) {
		t.Errorf("second initiation error = %v, want ErrTooSoon", second)
	}
}

func TestIG2SameValueSpacingEnforced(t *testing.T) {
	w, nodes := world(t, 4, 4)
	pp := w.Params()
	var second error
	w.Scheduler().At(simtime.Real(2*pp.D), func() {
		if err := nodes[0].InitiateAgreement("a"); err != nil {
			t.Errorf("first initiation: %v", err)
		}
	})
	// After Δ0 but before Δv: a different value passes, the same fails.
	w.Scheduler().At(simtime.Real(2*pp.D+pp.Delta0()+pp.D), func() {
		second = nodes[0].InitiateAgreement("a")
	})
	w.RunUntil(simtime.Real(2 * pp.DeltaAgr()))
	if !errors.Is(second, ErrValueTooSoon) {
		t.Errorf("same-value reinitiation error = %v, want ErrValueTooSoon", second)
	}
}

func TestIG2DifferentValueAllowedAfterDelta0(t *testing.T) {
	w, nodes := world(t, 4, 5)
	pp := w.Params()
	var second error
	w.Scheduler().At(simtime.Real(2*pp.D), func() {
		_ = nodes[0].InitiateAgreement("a")
	})
	w.Scheduler().At(simtime.Real(2*pp.D+pp.Delta0()+pp.D), func() {
		second = nodes[0].InitiateAgreement("b")
	})
	w.RunUntil(simtime.Real(3 * pp.DeltaAgr()))
	if second != nil {
		t.Errorf("different-value initiation after Δ0 refused: %v", second)
	}
	for i, n := range nodes {
		if returned, decided, v := n.Result(0); !returned || !decided || v != "b" {
			t.Errorf("node %d second agreement: (%v,%v,%q)", i, returned, decided, v)
		}
	}
}

func TestRecurringAgreementsSameValueAfterDeltaV(t *testing.T) {
	w, nodes := world(t, 4, 6)
	pp := w.Params()
	var errs []error
	at := simtime.Real(2 * pp.D)
	w.Scheduler().At(at, func() { errs = append(errs, nodes[0].InitiateAgreement("v")) })
	w.Scheduler().At(at+simtime.Real(pp.DeltaV()+pp.D), func() {
		errs = append(errs, nodes[0].InitiateAgreement("v"))
	})
	w.RunUntil(at + simtime.Real(pp.DeltaV()+3*pp.DeltaAgr()))
	for i, err := range errs {
		if err != nil {
			t.Errorf("initiation %d refused: %v", i, err)
		}
	}
	decides := w.Recorder().ByKind(protocol.EvDecide)
	// 4 nodes × 2 agreements.
	if len(decides) != 8 {
		t.Errorf("decides = %d, want 8", len(decides))
	}
}

func TestResultUnknownGeneral(t *testing.T) {
	_, nodes := world(t, 4, 7)
	returned, decided, v := nodes[1].Result(3)
	if returned || decided || v != protocol.Bottom {
		t.Errorf("Result for unknown General = (%v,%v,%q)", returned, decided, v)
	}
}

func TestMalformedGeneralIDDropped(t *testing.T) {
	w, nodes := world(t, 4, 8)
	// Deliver messages with out-of-range General ids directly.
	nodes[1].OnMessage(2, protocol.Message{Kind: protocol.Support, G: 99, M: "v"})
	nodes[1].OnMessage(2, protocol.Message{Kind: protocol.Support, G: -1, M: "v"})
	if len(nodes[1].insts) != 0 {
		t.Error("instance created for a malformed General id")
	}
	_ = w
}

func TestForgedInitiatorDropped(t *testing.T) {
	w, nodes := world(t, 4, 9)
	pp := w.Params()
	// Node 2 sends an Initiator message claiming G=0; the transport stamps
	// From=2 ≠ G, so it must be dropped.
	w.Scheduler().At(0, func() {
		w.Runtime(2).Broadcast(protocol.Message{Kind: protocol.Initiator, G: 0, M: "forged"})
	})
	w.RunUntil(simtime.Real(3 * pp.DeltaAgr()))
	for i, n := range nodes {
		if returned, _, _ := n.Result(0); returned {
			t.Errorf("node %d returned for a forged initiation", i)
		}
	}
	if evs := w.Recorder().ByKind(protocol.EvIAccept); len(evs) != 0 {
		t.Errorf("forged initiation produced %d I-accepts", len(evs))
	}
}

func TestExpireWithoutQuorum(t *testing.T) {
	// Only the General's own support exists (other nodes are silent), so
	// no anchor forms; the instance must terminate by reset (EvExpire).
	pp := protocol.DefaultParams(4)
	w, err := simnet.New(simnet.Config{Params: pp, Seed: 10})
	if err != nil {
		t.Fatalf("simnet.New: %v", err)
	}
	n0 := NewNode()
	w.SetNode(0, n0)
	// Nodes 1..3 left nil (silent).
	w.Start()
	w.Scheduler().At(simtime.Real(2*pp.D), func() {
		if err := n0.InitiateAgreement("alone"); err != nil {
			t.Errorf("InitiateAgreement: %v", err)
		}
	})
	w.RunUntil(simtime.Real(3 * pp.DeltaAgr()))
	if returned, _, _ := n0.Result(0); returned {
		t.Error("node returned a value without any quorum")
	}
	if evs := w.Recorder().ByKind(protocol.EvExpire); len(evs) == 0 {
		t.Error("no EvExpire: the invocation never terminated by reset")
	}
}

func TestIG3BackoffAfterFailedInvocation(t *testing.T) {
	// Same lonely-General setup: the General's own primitive cannot reach
	// L4/M4/N4 in time, so IG3 forces Δreset of silence.
	pp := protocol.DefaultParams(4)
	w, err := simnet.New(simnet.Config{Params: pp, Seed: 11})
	if err != nil {
		t.Fatalf("simnet.New: %v", err)
	}
	n0 := NewNode()
	w.SetNode(0, n0)
	w.Start()
	var backoffErr error
	w.Scheduler().At(simtime.Real(2*pp.D), func() { _ = n0.InitiateAgreement("x") })
	w.Scheduler().At(simtime.Real(2*pp.D+pp.Delta0()+pp.D), func() {
		backoffErr = n0.InitiateAgreement("y")
	})
	w.RunUntil(simtime.Real(pp.DeltaReset()))
	if !n0.Backoff() && !errors.Is(backoffErr, ErrBackoff) {
		t.Errorf("IG3 backoff not engaged after a failed invocation (err=%v)", backoffErr)
	}
}

func TestHasDistinctChain(t *testing.T) {
	rtStub := &Node{}
	_ = rtStub
	inst := &Instance{levels: make(map[protocol.Value]map[int]map[protocol.NodeID]levelRec)}
	add := func(v protocol.Value, k int, p protocol.NodeID) {
		byLevel, ok := inst.levels[v]
		if !ok {
			byLevel = make(map[int]map[protocol.NodeID]levelRec)
			inst.levels[v] = byLevel
		}
		senders, ok := byLevel[k]
		if !ok {
			senders = make(map[protocol.NodeID]levelRec)
			byLevel[k] = senders
		}
		senders[p] = levelRec{}
	}
	// Level 1: {1}, level 2: {1} — the same node cannot fill both.
	add("v", 1, 1)
	add("v", 2, 1)
	if inst.hasDistinctChain("v", 2) {
		t.Error("chain accepted a repeated sender")
	}
	// A second node at level 2 resolves it.
	add("v", 2, 2)
	if !inst.hasDistinctChain("v", 2) {
		t.Error("distinct chain not found")
	}
	// Backtracking case: level 1 {1,2}, level 2 {2}; must assign 2→2, 1→1.
	inst.levels = make(map[protocol.Value]map[int]map[protocol.NodeID]levelRec)
	add("w", 1, 1)
	add("w", 1, 2)
	add("w", 2, 2)
	if !inst.hasDistinctChain("w", 2) {
		t.Error("backtracking matching failed")
	}
	// Missing level.
	if inst.hasDistinctChain("w", 3) {
		t.Error("chain found across a missing level")
	}
}

func TestStringer(t *testing.T) {
	n := NewNode()
	if s := n.String(); s != "core.Node(unattached)" {
		t.Errorf("unattached String = %q", s)
	}
	w, nodes := world(t, 4, 12)
	_ = w
	if s := nodes[2].String(); s != "core.Node(2)" {
		t.Errorf("String = %q", s)
	}
}

func TestDecisionSkewWithDriftingClocks(t *testing.T) {
	pp := protocol.DefaultParams(7)
	clocks := make([]simtime.Clock, 7)
	for i := range clocks {
		// ±200 ppm drift and scattered offsets: τ readings disagree wildly
		// but intervals stay honest.
		ppm := int64(i-3) * 100
		clocks[i] = simtime.DriftClock(simtime.Local(i*1_000_000), ppm, 0)
	}
	w, err := simnet.New(simnet.Config{Params: pp, Seed: 13, Clocks: clocks, DelayMin: pp.D / 2, DelayMax: pp.D})
	if err != nil {
		t.Fatalf("simnet.New: %v", err)
	}
	nodes := make([]*Node, 7)
	for i := range nodes {
		nodes[i] = NewNode()
		w.SetNode(protocol.NodeID(i), nodes[i])
	}
	w.Start()
	w.Scheduler().At(simtime.Real(2*pp.D), func() { _ = nodes[0].InitiateAgreement("drift") })
	w.RunUntil(simtime.Real(3 * pp.DeltaAgr()))
	decides := w.Recorder().ByKind(protocol.EvDecide)
	if len(decides) != 7 {
		t.Fatalf("decides = %d, want 7", len(decides))
	}
	lo, hi := decides[0].RT, decides[0].RT
	for _, ev := range decides {
		if ev.M != "drift" {
			t.Errorf("node %d decided %q", ev.Node, ev.M)
		}
		if ev.RT < lo {
			lo = ev.RT
		}
		if ev.RT > hi {
			hi = ev.RT
		}
	}
	if skew := hi - lo; skew > 2*simtime.Real(pp.D) {
		t.Errorf("decision skew %d > 2d under drifting clocks", skew)
	}
}

func TestWrappedClocksStillAgree(t *testing.T) {
	pp := protocol.DefaultParams(4)
	pp.Wrap = 10 * pp.DeltaStb()
	clocks := make([]simtime.Clock, 4)
	for i := range clocks {
		// Offsets just below the wrap point so readings wrap mid-run.
		clocks[i] = simtime.Clock{OffsetTicks: simtime.Local(pp.Wrap) - 3000, Wrap: pp.Wrap}
	}
	w, err := simnet.New(simnet.Config{Params: pp, Seed: 14, Clocks: clocks, DelayMin: pp.D / 2, DelayMax: pp.D})
	if err != nil {
		t.Fatalf("simnet.New: %v", err)
	}
	nodes := make([]*Node, 4)
	for i := range nodes {
		nodes[i] = NewNode()
		w.SetNode(protocol.NodeID(i), nodes[i])
	}
	w.Start()
	w.Scheduler().At(simtime.Real(2*pp.D), func() { _ = nodes[0].InitiateAgreement("wrap") })
	w.RunUntil(simtime.Real(3 * pp.DeltaAgr()))
	for i, n := range nodes {
		if returned, decided, v := n.Result(0); !returned || !decided || v != "wrap" {
			t.Errorf("node %d with wrapping clock: (%v,%v,%q)", i, returned, decided, v)
		}
	}
}

func TestConcurrentGeneralsIndependentInstances(t *testing.T) {
	w, nodes := world(t, 7, 15)
	pp := w.Params()
	w.Scheduler().At(simtime.Real(2*pp.D), func() { _ = nodes[0].InitiateAgreement("from-0") })
	w.Scheduler().At(simtime.Real(3*pp.D), func() { _ = nodes[1].InitiateAgreement("from-1") })
	w.RunUntil(simtime.Real(3 * pp.DeltaAgr()))
	for i, n := range nodes {
		if _, decided, v := n.Result(0); !decided || v != "from-0" {
			t.Errorf("node %d General 0: (%v,%q)", i, decided, v)
		}
		if _, decided, v := n.Result(1); !decided || v != "from-1" {
			t.Errorf("node %d General 1: (%v,%q)", i, decided, v)
		}
	}
}
