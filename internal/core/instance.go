// Package core implements the ss-Byz-Agree protocol of Fig. 1: the paper's
// primary contribution. Each node runs one agreement instance per General;
// the instance wires an Initiator-Accept primitive (which produces the
// anchor τG and candidate value) to a msgd-broadcast session (which drives
// the round structure), and executes blocks Q/R/S/T/U.
//
// Once the system is stable and n > 3f (Theorem 3) the protocol satisfies
// Agreement, Validity and Termination, plus the Timeliness properties
// (agreement skew ≤ 3d, anchor skew ≤ 6d, termination ≤ Δagr, validity
// window [t0−d, t0+4d], and the separation bounds).
package core

import (
	"ssbyz/internal/broadcast"
	"ssbyz/internal/initaccept"
	"ssbyz/internal/protocol"
	"ssbyz/internal/simtime"
)

// Timer tag names used by the agreement layer.
const (
	tagBlockT  = "agr-t"     // Block T deadline for round K
	tagBlockU  = "agr-u"     // Block U deadline (2f+1)·Φ
	tagReset   = "agr-reset" // reset primitives 3d after returning
	tagSweep   = "agr-sweep" // periodic decay
	tagIG3     = "agr-ig3"   // General-side failed-invocation check
	tagIGReset = "agr-igrst" // end of the General's Δreset silence
)

// levelRec records one accepted broadcast (p, ⟨G,m⟩, k) for Block S.
type levelRec struct {
	at simtime.Local
}

// blockRWindow is the prompt-I-accept window of Block R (see the deviation
// note at its use site): 5d rather than the paper's literal 4d, unless the
// A1 ablation overrides it through the parameters.
func blockRWindow(pp protocol.Params) simtime.Duration {
	if pp.BlockRWindow > 0 {
		return pp.BlockRWindow
	}
	return 5 * pp.D
}

// Instance is one node's agreement state for General g.
type Instance struct {
	rt protocol.Runtime
	g  protocol.NodeID
	pp protocol.Params

	ia *initaccept.Instance
	bc *broadcast.Session

	invoked    bool
	invokedAt  simtime.Local
	tauGSet    bool
	tauG       simtime.Local
	anchoredAt simtime.Local // local time τG was set (stabilization backstop)
	iaValue    protocol.Value
	returned   bool
	returnedAt simtime.Local
	decided    bool
	retValue   protocol.Value
	// onReturn reports decide/abort outcomes to the owning node so they
	// survive the instance's 3d-deferred reset.
	onReturn func(g protocol.NodeID, decided bool, v protocol.Value)

	// levels[value][k][p] records accepted broadcasts per round for
	// Block S; entries decay after (2f+1)·Φ + 3d.
	levels map[protocol.Value]map[int]map[protocol.NodeID]levelRec

	deadlineTimers []protocol.TimerID
}

func newInstance(rt protocol.Runtime, g protocol.NodeID, onReturn func(protocol.NodeID, bool, protocol.Value)) *Instance {
	inst := &Instance{
		rt:       rt,
		g:        g,
		pp:       rt.Params(),
		levels:   make(map[protocol.Value]map[int]map[protocol.NodeID]levelRec),
		onReturn: onReturn,
	}
	inst.ia = initaccept.New(rt, g, inst.onIAccept)
	inst.bc = broadcast.NewSession(rt, g, inst.onAccept)
	return inst
}

// Returned reports whether the instance has stopped, and with what value
// (⊥ for abort). decided distinguishes decide from abort.
func (inst *Instance) Returned() (returned, decided bool, value protocol.Value) {
	return inst.returned, inst.decided, inst.retValue
}

// TauG exposes the anchor (for tests).
func (inst *Instance) TauG() (simtime.Local, bool) { return inst.tauG, inst.tauGSet }

// IA and BC expose the primitives (transient injector and white-box tests).
func (inst *Instance) IA() *initaccept.Instance { return inst.ia }
func (inst *Instance) BC() *broadcast.Session   { return inst.bc }

// onInitiator handles Block Q1: receipt of (Initiator, G, m) from G.
func (inst *Instance) onInitiator(m protocol.Message) {
	if inst.returned {
		return
	}
	now := inst.rt.Now()
	if !inst.invoked {
		inst.invoked = true
		inst.invokedAt = now
		inst.rt.Trace(protocol.TraceEvent{Kind: protocol.EvInvoke, G: inst.g, M: m.M})
	}
	inst.ia.Invoke(m.M, now)
}

// onIAccept is the Initiator-Accept output: I-accept ⟨G, m′, τG⟩.
// It realizes Block R, and arms the S/T/U machinery when R's 4d window
// has already passed.
func (inst *Instance) onIAccept(m protocol.Value, tauG simtime.Local) {
	if inst.tauGSet || inst.returned {
		return
	}
	now := inst.rt.Now()
	inst.tauGSet = true
	inst.tauG = tauG
	inst.anchoredAt = now
	inst.iaValue = m
	// SetAnchor replays any logged broadcast-layer messages, which can
	// complete Block S and return the instance right here.
	inst.bc.SetAnchor(tauG)
	if inst.returned {
		return
	}

	// Block R: decide immediately on a prompt I-accept.
	//
	// Deviation from the paper's Fig. 1, documented in DESIGN.md §3: R1
	// tests
	// τq − τG ≤ 4d, but the paper's own Claim 1 timeline allows a correct
	// node's N4 as late as t0+4d with its recording time as early as t0−d
	// (IA-1D), i.e. an own-node gap of up to 5d. With the literal 4d the
	// earliest Initiator recipient can fail R in a fault-free run and
	// miss the t0+4d decision bound of Timeliness-2 via the S path. The
	// consistent constant is 5d; safety is unaffected (R still requires
	// an I-accept, and IA-4 bounds anchors across values).
	if elapsed := inst.pp.Sub(now, tauG); elapsed >= 0 && elapsed <= blockRWindow(inst.pp) {
		inst.decide(m, 1)
		return
	}

	// Late I-accept (possible only with a faulty General): fall through to
	// the round structure. Arm Block T deadlines for r = 2..f and the
	// Block U deadline at (2f+1)·Φ.
	inst.armDeadlines(now)
	// Logged broadcast-layer messages may already complete Block S.
	inst.trySBlock(now)
}

// armDeadlines schedules the T and U checks relative to the anchor.
func (inst *Instance) armDeadlines(now simtime.Local) {
	phi := inst.pp.Phi()
	for r := 2; r <= inst.pp.F; r++ {
		deadline := simtime.Duration(2*r+1) * phi
		dl := deadline - inst.pp.Sub(now, inst.tauG) + 1
		id := inst.rt.After(dl, protocol.TimerTag{Name: tagBlockT, G: inst.g, K: r})
		inst.deadlineTimers = append(inst.deadlineTimers, id)
	}
	deadline := simtime.Duration(2*inst.pp.F+1) * phi
	dl := deadline - inst.pp.Sub(now, inst.tauG) + 1
	id := inst.rt.After(dl, protocol.TimerTag{Name: tagBlockU, G: inst.g})
	inst.deadlineTimers = append(inst.deadlineTimers, id)
}

// onAccept is the msgd-broadcast output: the node accepted (p, m, k).
func (inst *Instance) onAccept(p protocol.NodeID, m protocol.Value, k int) {
	if inst.returned || !inst.tauGSet {
		return
	}
	if p == inst.g || k < 1 {
		return // Block S only counts broadcasters distinct from G
	}
	now := inst.rt.Now()
	byLevel, ok := inst.levels[m]
	if !ok {
		byLevel = make(map[int]map[protocol.NodeID]levelRec)
		inst.levels[m] = byLevel
	}
	senders, ok := byLevel[k]
	if !ok {
		senders = make(map[protocol.NodeID]levelRec)
		byLevel[k] = senders
	}
	senders[p] = levelRec{at: now}
	inst.trySBlock(now)
}

// trySBlock evaluates Block S: if by τq ≤ τG + (2r+1)·Φ the node has
// accepted r messages (p_i, ⟨G,m″⟩, i) for i = 1..r with pairwise-distinct
// p_i ≠ G, it decides m″ and relays at level r+1. The smallest satisfiable
// r fires (deciding at the earliest opportunity).
func (inst *Instance) trySBlock(now simtime.Local) {
	if inst.returned || !inst.tauGSet {
		return
	}
	elapsed := inst.pp.Sub(now, inst.tauG)
	for m, byLevel := range inst.levels {
		maxR := 0
		for k := range byLevel {
			if k > maxR {
				maxR = k
			}
		}
		for r := 1; r <= maxR && r <= inst.pp.F; r++ {
			if elapsed > simtime.Duration(2*r+1)*inst.pp.Phi() {
				continue
			}
			if inst.hasDistinctChain(m, r) {
				inst.decide(m, r+1)
				return
			}
		}
	}
}

// hasDistinctChain checks for a system of distinct representatives:
// one accepted sender per level 1..r, all senders pairwise distinct.
// Levels and f are small, so a simple backtracking matching suffices.
func (inst *Instance) hasDistinctChain(m protocol.Value, r int) bool {
	byLevel := inst.levels[m]
	used := make(map[protocol.NodeID]bool)
	var match func(level int) bool
	match = func(level int) bool {
		if level > r {
			return true
		}
		for p := range byLevel[level] {
			if used[p] {
				continue
			}
			used[p] = true
			if match(level + 1) {
				return true
			}
			delete(used, p)
		}
		return false
	}
	return match(1)
}

// onBlockT runs the Block T check at τG + (2r+1)·Φ: abort when fewer than
// r−1 broadcasters have been detected.
func (inst *Instance) onBlockT(r int) {
	if inst.returned || !inst.tauGSet {
		return
	}
	if inst.bc.Broadcasters() < r-1 {
		inst.abort()
	}
}

// onBlockU runs the Block U check at τG + (2f+1)·Φ: unconditional abort.
func (inst *Instance) onBlockU() {
	if inst.returned || !inst.tauGSet {
		return
	}
	inst.abort()
}

// decide stops with a value: msgd-broadcast (q, value, k), return.
func (inst *Instance) decide(m protocol.Value, k int) {
	inst.bc.Broadcast(m, k)
	inst.returned = true
	inst.returnedAt = inst.rt.Now()
	inst.decided = true
	inst.retValue = m
	if inst.onReturn != nil {
		inst.onReturn(inst.g, true, m)
	}
	inst.stop()
	inst.rt.Trace(protocol.TraceEvent{
		Kind: protocol.EvDecide, G: inst.g, M: m, K: k, TauG: inst.tauG,
	})
}

// abort stops with ⊥.
func (inst *Instance) abort() {
	inst.returned = true
	inst.returnedAt = inst.rt.Now()
	inst.decided = false
	inst.retValue = protocol.Bottom
	if inst.onReturn != nil {
		inst.onReturn(inst.g, false, protocol.Bottom)
	}
	inst.stop()
	inst.rt.Trace(protocol.TraceEvent{
		Kind: protocol.EvAbort, G: inst.g, M: protocol.Bottom, TauG: inst.tauG,
	})
}

// stop cancels deadline timers and schedules the 3d-deferred reset of the
// primitives ("a node stops participating ... and it stopped participating
// in the invoked primitives 3d time units after that").
func (inst *Instance) stop() {
	for _, id := range inst.deadlineTimers {
		inst.rt.Cancel(id)
	}
	inst.deadlineTimers = nil
	inst.rt.After(3*inst.pp.D, protocol.TimerTag{Name: tagReset, G: inst.g})
}

// reset clears the per-agreement state so a later invocation starts fresh.
// The Initiator-Accept rate-limiting variables survive inside ia.
func (inst *Instance) reset() {
	inst.ia.ResetAcceptState()
	inst.bc.Reset()
	inst.invoked = false
	inst.invokedAt = 0
	inst.tauGSet = false
	inst.tauG = 0
	inst.anchoredAt = 0
	inst.iaValue = protocol.Bottom
	inst.returned = false
	inst.returnedAt = 0
	inst.decided = false
	inst.retValue = protocol.Bottom
	for _, id := range inst.deadlineTimers {
		inst.rt.Cancel(id)
	}
	inst.deadlineTimers = nil
	inst.levels = make(map[protocol.Value]map[int]map[protocol.NodeID]levelRec)
}

// cleanup applies the agreement-layer decay: "erase any value or message
// older than (2f+1)·Φ + 3d time units".
func (inst *Instance) cleanup(now simtime.Local) {
	maxAge := inst.pp.DeltaAgr() + 3*inst.pp.D
	for m, byLevel := range inst.levels {
		for k, senders := range byLevel {
			for p, rec := range senders {
				age := inst.pp.Sub(now, rec.at)
				if age < 0 || age > maxAge {
					delete(senders, p)
				}
			}
			if len(senders) == 0 {
				delete(byLevel, k)
			}
		}
		if len(byLevel) == 0 {
			delete(inst.levels, m)
		}
	}
	inst.ia.Cleanup(now)
	inst.bc.Cleanup(now)

	// Self-stabilization backstops: a transient fault can leave the
	// control state in configurations no fair execution produces — e.g.
	// returned=true with no pending reset timer, or an anchor with no
	// armed deadlines. Such residue is "older than (2f+1)·Φ + 3d" in the
	// sense of the cleanup rule and is erased here, so the instance always
	// becomes available again within one Δagr.
	if inst.returned {
		if age := inst.pp.Sub(now, inst.returnedAt); age < 0 || age > maxAge {
			inst.reset()
			return
		}
	}
	if inst.tauGSet && !inst.returned {
		age := inst.pp.Sub(now, inst.anchoredAt)
		anchorAge := inst.pp.Sub(now, inst.tauG)
		if age < 0 || age > maxAge || anchorAge < 0 || anchorAge > maxAge+simtime.Duration(8*inst.pp.D) {
			inst.expire()
		}
	}
	// An invocation whose anchor never materialized (the General failed to
	// assemble a support quorum) terminates by reset: "by time
	// (2f+1)·Φ + 3d on its clock all entries will be reset, which is a
	// termination of the protocol".
	if inst.invoked && !inst.tauGSet && !inst.returned {
		age := inst.pp.Sub(now, inst.invokedAt)
		if age < 0 || age > maxAge {
			inst.expire()
		}
	}
}

// expire terminates the instance by state reset without returning a value
// (the paper's second termination mode) and records the event.
func (inst *Instance) expire() {
	inst.rt.Trace(protocol.TraceEvent{Kind: protocol.EvExpire, G: inst.g})
	inst.reset()
}
