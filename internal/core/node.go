package core

import (
	"errors"
	"fmt"

	"ssbyz/internal/initaccept"
	"ssbyz/internal/protocol"
	"ssbyz/internal/simtime"
)

// Sending-validity errors returned by InitiateAgreement. A correct General
// refuses to initiate when the criteria of Section 3 would be violated.
var (
	// ErrTooSoon: IG1 — less than Δ0 since the previous initiation.
	ErrTooSoon = errors.New("core: IG1 violated: less than Δ0 since previous initiation")
	// ErrValueTooSoon: IG2 — less than Δv since the previous initiation
	// with the same value.
	ErrValueTooSoon = errors.New("core: IG2 violated: less than Δv since previous initiation of this value")
	// ErrBackoff: IG3 — a recent invocation failed; the General stays
	// silent for Δreset.
	ErrBackoff = errors.New("core: IG3 backoff: recent invocation failed, General is silent for Δreset")
)

// Node is a correct node running ss-Byz-Agree. It implements
// protocol.Node, hosts one agreement instance per General, and carries the
// General-side initiation logic for agreements it starts itself.
type Node struct {
	rt protocol.Runtime
	pp protocol.Params

	insts map[protocol.NodeID]*Instance
	// outcomes records the latest return per General so Result stays
	// answerable after the instance's 3d-deferred reset.
	outcomes map[protocol.NodeID]outcome

	// General-side sending-validity state (IG1–IG3).
	hasInit       bool
	lastInit      simtime.Local
	lastValueInit map[protocol.Value]simtime.Local
	backoff       bool
	backoffUntil  simtime.Local
	pendingIG3    map[protocol.Value]simtime.Local
}

var _ protocol.Node = (*Node)(nil)

// NewNode returns an unattached correct node.
func NewNode() *Node {
	return &Node{
		insts:         make(map[protocol.NodeID]*Instance),
		outcomes:      make(map[protocol.NodeID]outcome),
		lastValueInit: make(map[protocol.Value]simtime.Local),
		pendingIG3:    make(map[protocol.Value]simtime.Local),
	}
}

// outcome is one remembered agreement return.
type outcome struct {
	decided bool
	value   protocol.Value
}

// Start attaches the runtime and arms the periodic decay sweep.
func (n *Node) Start(rt protocol.Runtime) {
	n.rt = rt
	n.pp = rt.Params()
	n.rt.After(n.sweepEvery(), protocol.TimerTag{Name: tagSweep})
}

func (n *Node) sweepEvery() simtime.Duration { return n.pp.DeltaRmv() / 4 }

// Instance returns (creating on demand) the agreement instance for
// General g.
func (n *Node) Instance(g protocol.NodeID) *Instance {
	inst, ok := n.insts[g]
	if !ok {
		inst = newInstance(n.rt, g, n.recordOutcome)
		n.insts[g] = inst
	}
	return inst
}

// recordOutcome remembers the latest return for Result.
func (n *Node) recordOutcome(g protocol.NodeID, decided bool, v protocol.Value) {
	n.outcomes[g] = outcome{decided: decided, value: v}
}

// InitiateAgreement starts agreement on value m with this node as the
// General (Block Q0), enforcing the Sending Validity Criteria.
func (n *Node) InitiateAgreement(m protocol.Value) error {
	if n.rt == nil {
		return errors.New("core: node not started")
	}
	if m == protocol.Bottom {
		return errors.New("core: cannot initiate agreement on ⊥")
	}
	now := n.rt.Now()
	if n.backoff {
		if n.pp.Sub(n.backoffUntil, now) > 0 {
			return ErrBackoff
		}
		n.backoff = false
	}
	if n.hasInit {
		if age := n.pp.Sub(now, n.lastInit); age >= 0 && age < n.pp.Delta0() {
			return ErrTooSoon
		}
	}
	if t, ok := n.lastValueInit[m]; ok {
		if age := n.pp.Sub(now, t); age >= 0 && age < n.pp.DeltaV() {
			return ErrValueTooSoon
		}
	}
	// "The General, before initiating the primitive, removes from its
	// memory all previously received messages associated with any previous
	// invocation of the primitive with him as a General."
	self := n.rt.ID()
	n.Instance(self).ia.ClearMessages()

	n.hasInit = true
	n.lastInit = now
	n.lastValueInit[m] = now
	n.pendingIG3[m] = now
	n.rt.Trace(protocol.TraceEvent{Kind: protocol.EvInitiate, G: self, M: m})
	n.rt.Broadcast(protocol.Message{Kind: protocol.Initiator, G: self, M: m})
	// IG3: verify the primitive's own progress (L4 ≤ 2d, M4 ≤ 3d,
	// N4 ≤ 4d after invocation). Checked once the last bound has passed.
	n.rt.After(5*n.pp.D, protocol.TimerTag{Name: tagIG3, M: m})
	return nil
}

// Backoff reports whether the General-side IG3 silence is active.
func (n *Node) Backoff() bool { return n.backoff }

// Result returns the latest agreement outcome for General g:
// returned=false while running (or never invoked), decided=false with
// value ⊥ for abort. The outcome survives the instance's internal reset,
// reflecting the most recent completed agreement for g.
func (n *Node) Result(g protocol.NodeID) (returned, decided bool, value protocol.Value) {
	if inst, ok := n.insts[g]; ok {
		if returned, decided, value = inst.Returned(); returned {
			return returned, decided, value
		}
	}
	if out, ok := n.outcomes[g]; ok {
		return true, out.decided, out.value
	}
	return false, false, protocol.Bottom
}

// OnMessage routes wire messages to the per-General instances.
func (n *Node) OnMessage(from protocol.NodeID, m protocol.Message) {
	if int(m.G) < 0 || int(m.G) >= n.pp.N {
		return // malformed General id
	}
	switch m.Kind {
	case protocol.Initiator:
		// Only G itself may initiate for G; the transport authenticates
		// From, so a forged Initiator is silently dropped.
		if from != m.G {
			return
		}
		n.Instance(m.G).onInitiator(m)
	case protocol.Support, protocol.Approve, protocol.Ready:
		n.Instance(m.G).ia.OnMessage(from, m)
	case protocol.Init, protocol.Echo, protocol.InitPrime, protocol.EchoPrime:
		n.Instance(m.G).bc.OnMessage(from, m)
	}
}

// OnTimer dispatches timer expiries.
func (n *Node) OnTimer(tag protocol.TimerTag) {
	switch tag.Name {
	case initaccept.TagRetry:
		if inst, ok := n.insts[tag.G]; ok {
			inst.ia.OnTimer(tag)
		}
	case tagBlockT:
		if inst, ok := n.insts[tag.G]; ok {
			inst.onBlockT(tag.K)
		}
	case tagBlockU:
		if inst, ok := n.insts[tag.G]; ok {
			inst.onBlockU()
		}
	case tagReset:
		if inst, ok := n.insts[tag.G]; ok {
			inst.reset()
		}
	case tagSweep:
		now := n.rt.Now()
		for _, inst := range n.insts {
			inst.cleanup(now)
		}
		n.rt.After(n.sweepEvery(), protocol.TimerTag{Name: tagSweep})
	case tagIG3:
		n.checkIG3(tag.M)
	case tagIGReset:
		// End of Δreset silence is detected lazily in InitiateAgreement.
	}
}

// checkIG3 determines whether the General's own invocation of
// Initiator-Accept failed: "executing lines L4, M4 or N4 ... is not
// completed within 2d, 3d or 4d of the invocation, respectively". On
// failure the General goes silent for Δreset.
func (n *Node) checkIG3(m protocol.Value) {
	invokedAt, ok := n.pendingIG3[m]
	if !ok {
		return
	}
	delete(n.pendingIG3, m)
	inst := n.Instance(n.rt.ID())
	l4, m4, n4, okL, okM, okN := inst.ia.LineTimes(m)
	d := n.pp.D
	failed := !okL || n.pp.Sub(l4, invokedAt) > 2*d ||
		!okM || n.pp.Sub(m4, invokedAt) > 3*d ||
		!okN || n.pp.Sub(n4, invokedAt) > 4*d
	if failed {
		now := n.rt.Now()
		n.backoff = true
		n.backoffUntil = n.pp.Add(now, n.pp.DeltaReset())
		n.rt.After(n.pp.DeltaReset(), protocol.TimerTag{Name: tagIGReset})
	}
}

// String identifies the node for debugging.
func (n *Node) String() string {
	if n.rt == nil {
		return "core.Node(unattached)"
	}
	return fmt.Sprintf("core.Node(%d)", n.rt.ID())
}
