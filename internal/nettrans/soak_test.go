package nettrans

import (
	"fmt"
	"testing"
	"time"

	"ssbyz/internal/check"
	"ssbyz/internal/clock"
	"ssbyz/internal/core"
	"ssbyz/internal/protocol"
	"ssbyz/internal/simtime"
)

// TestVirtualAcceleratedSoak compresses simulated hours of a 7-node
// cluster into CI seconds: a burst of agreements (churn), then a
// transient fault — the control state of f nodes scrambled through the
// core corruption hooks — then a quiet stretch of Δstb virtual time
// crossed under FakeClock auto-advance with the test registered as the
// driver, and finally a fresh agreement that must go through cleanly.
// The paper's self-stabilization claim, run operationally: whatever the
// transient left behind, Δstb later the system behaves as if it never
// happened. With a 1s tick, Δstb at d=50 is 23200 virtual seconds
// (≈ 6.4 hours); the whole test must stay far under 60s of wall clock.
func TestVirtualAcceleratedSoak(t *testing.T) {
	wallStart := time.Now()

	pp := protocol.DefaultParams(7)
	pp.D = 50
	const tick = time.Second
	clk := clock.NewFake(time.Time{})
	c, err := NewCluster(ClusterConfig{
		Params: pp,
		Tick:   tick,
		Clock:  clk,
		Seed:   7,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Stop()
	budget := time.Duration(pp.DeltaAgr()+20*pp.D) * tick

	// Churn: a run of agreements from rotating Generals.
	for g := protocol.NodeID(0); g < 3; g++ {
		v := protocol.Value(fmt.Sprintf("churn-%d", g))
		if _, err := c.Initiate(g, v, time.Second); err != nil {
			t.Fatalf("churn initiate g=%d: %v", g, err)
		}
		if done := c.AwaitDecisions(g, v, budget); done != 7 {
			t.Fatalf("churn g=%d: decided %d/7", g, done)
		}
	}

	// Transient fault: scramble the control state of f=2 nodes. Each
	// corruption hook plants a configuration no execution could have
	// produced — a mid-agreement anchor with no messages behind it, a
	// return with no reset pending, phantom accepted broadcasts, and
	// garbage General-side backoff bookkeeping.
	now := simtime.Local(c.NowTicks())
	for _, id := range []protocol.NodeID{1, 2} {
		c.DoWait(id, func(n protocol.Node) {
			cn := n.(*core.Node)
			inst := cn.InstanceWithRuntime(nil, 3)
			inst.CorruptMidAgreement(now-simtime.Local(3*pp.D), "phantom")
			inst.CorruptLevel("phantom", 1, 5, now-simtime.Local(2*pp.D))
			cn.InstanceWithRuntime(nil, 4).CorruptReturned(now-simtime.Local(pp.D), true, "ghost")
			cn.CorruptGeneralState(now, now+simtime.Local(pp.DeltaV()))
		})
	}

	// Stabilization: sleep Δstb of virtual time. The test goroutine is
	// the registered driver; AutoAdvance rushes the clock from timer to
	// timer (decay sweeps, recovery resets) while we are asleep and
	// holds it still the moment we wake.
	stop := clk.AutoAdvance()
	clk.Register()
	clk.Sleep(time.Duration(pp.DeltaStb()) * tick)
	clk.Unregister()
	stop()
	clk.WaitIdle()

	// Post-stabilization: the corrupted instances must be swept...
	for _, id := range []protocol.NodeID{1, 2} {
		c.DoWait(id, func(n protocol.Node) {
			cn := n.(*core.Node)
			for _, g := range []protocol.NodeID{3, 4} {
				if returned, _, _ := cn.Result(g); returned {
					t.Errorf("node %d still holds a returned instance for g=%d after Δstb", id, g)
				}
			}
		})
	}

	// ...and a fresh agreement must run cleanly, including on the
	// previously corrupted nodes.
	suffixStart := c.NowTicks()
	t0, err := c.Initiate(5, "post-stab", time.Second)
	if err != nil {
		t.Fatalf("post-stabilization initiate: %v", err)
	}
	if done := c.AwaitDecisions(5, "post-stab", budget); done != 7 {
		t.Fatalf("post-stabilization: decided %d/7", done)
	}

	// Battery over the post-stabilization suffix of the trace: the
	// recovered system must satisfy every property on its fresh history.
	var suffix []protocol.TraceEvent
	for _, ev := range c.rec.Events() {
		if ev.RT >= suffixStart {
			suffix = append(suffix, ev)
		}
	}
	horizon := simtime.Duration(c.NowTicks()) + 1
	lr := &check.LiveResult{Result: BuildResult(pp, suffix, c.Correct(), horizon)}
	if v := lr.Battery([]check.LiveInitiation{{G: 5, V: "post-stab", T0: t0}}); len(v) != 0 {
		t.Fatalf("post-stabilization battery: %v", v)
	}

	if virt := time.Duration(c.NowTicks()) * tick; virt < 4*time.Hour {
		t.Fatalf("soak covered only %v of virtual time, want hours", virt)
	}
	if wall := time.Since(wallStart); wall > 60*time.Second {
		t.Fatalf("soak took %v of wall clock, want < 60s", wall)
	}
}
