package nettrans

import (
	"ssbyz/internal/protocol"
	"ssbyz/internal/wire"
)

// Frame coalescing: the send half of the wire-rate hot path
// (DESIGN.md §11).
//
// A protocol event handler typically emits a burst of sends — a
// broadcast is n point-to-point frames, a round change can fan out
// several broadcasts back-to-back. The legacy wire paid one datagram
// (and one syscall, and one receive-loop wakeup, and one mailbox
// enqueue at the receiver) per frame. The coalescer instead parks each
// immediate-path frame in a per-peer pending buffer and flushes all
// peers once the burst is over: every frame the current run of event-
// handler work produced for a peer leaves in ONE FrameBatch datagram.
//
// "Once the burst is over" is expressed with the mailbox itself: the
// first frame parked after a flush enqueues the flush as an event, so
// it runs after every handler event that was already queued — by which
// time those handlers have parked all their frames. No timer, no added
// latency beyond the work the event loop was going to do anyway.
//
// All coalescer state is event-loop-only, like the Send scratch
// buffers: protocol.Runtime's contract is that Send/Broadcast are
// called from the node's single event loop, and the flush runs as a
// mailbox event on that same loop. No locks.

// maxBatchBytes caps one container's accumulated inner-frame bytes so
// the datagram stays under the UDP payload ceiling (65507 on loopback)
// with generous envelope headroom.
const maxBatchBytes = 60 << 10

// pendingPeer accumulates one peer's unsent frames back-to-back in a
// single buffer; ends[i] is the end offset of frame i (the AppendBatch
// input format). container is the reusable envelope scratch.
type pendingPeer struct {
	buf       []byte
	ends      []int
	container []byte
}

// batchSender is the optional transport fast path: hand a whole flush
// (one datagram per peer) to the socket in one call, so the UDP
// transport can issue a single sendmmsg syscall for all of it.
type batchSender interface {
	sendBatch(dsts []protocol.NodeID, frames [][]byte)
}

type coalescer struct {
	nn      *NetNode
	pending []pendingPeer
	// dirty lists peers with parked frames in first-touch order; a peer
	// may appear twice after an inline size flush (the second visit finds
	// it empty and skips).
	dirty  []protocol.NodeID
	queued bool
	// flushFn is flush as a prebuilt func value, so scheduling a flush
	// does not allocate.
	flushFn func()
	// flush-time scratch for the batchSender call.
	dsts   []protocol.NodeID
	frames [][]byte
}

func newCoalescer(nn *NetNode) *coalescer {
	co := &coalescer{nn: nn, pending: make([]pendingPeer, nn.cfg.Params.N)}
	co.flushFn = co.flush
	return co
}

// add parks one encoded frame for peer to, scheduling a flush at the
// end of the current event burst. Event-loop only. The frame bytes are
// copied immediately (the caller's scratch buffer is free on return).
func (co *coalescer) add(to protocol.NodeID, frame []byte) {
	p := &co.pending[to]
	if len(p.ends) == 0 {
		co.dirty = append(co.dirty, to)
	}
	p.buf = append(p.buf, frame...)
	p.ends = append(p.ends, len(p.buf))
	if len(p.ends) >= wire.MaxBatchFrames || len(p.buf) >= maxBatchBytes {
		// Full container: emit now rather than overflow the datagram. The
		// peer stays dirty-listed; later frames start a fresh batch.
		co.emit(to, p)
	}
	if !co.queued {
		co.queued = true
		co.nn.mbox.Enqueue(co.flushFn)
	}
}

// flush emits every dirty peer's pending frames. It runs as a mailbox
// event, i.e. after all handler events that were queued when the burst
// started — their frames are all parked by now.
func (co *coalescer) flush() {
	co.queued = false
	if len(co.dirty) == 0 {
		return
	}
	nn := co.nn
	bs, _ := nn.trans.(batchSender)
	co.dsts = co.dsts[:0]
	co.frames = co.frames[:0]
	for _, to := range co.dirty {
		p := &co.pending[to]
		if len(p.ends) == 0 {
			continue // emptied by an inline size flush
		}
		dg := co.pack(to, p)
		if bs == nil {
			nn.trans.send(to, dg)
			continue
		}
		co.dsts = append(co.dsts, to)
		co.frames = append(co.frames, dg)
	}
	co.dirty = co.dirty[:0]
	if bs != nil && len(co.dsts) > 0 {
		// The packed datagrams alias the per-peer buffers; that is safe
		// because only this event loop appends to them, and it is busy
		// right here until sendBatch returns.
		bs.sendBatch(co.dsts, co.frames)
	}
}

// emit sends one peer's pending frames immediately (inline size flush).
func (co *coalescer) emit(to protocol.NodeID, p *pendingPeer) {
	co.nn.trans.send(to, co.pack(to, p))
}

// pack turns a peer's pending frames into the bytes to put on the wire
// and resets the pending state. A lone frame ships raw — no container,
// byte-identical to the legacy wire — so batching only ever appears on
// the wire when it actually coalesces.
func (co *coalescer) pack(to protocol.NodeID, p *pendingPeer) []byte {
	nn := co.nn
	if len(p.ends) == 1 {
		dg := p.buf
		p.buf, p.ends = p.buf[:0], p.ends[:0]
		return dg
	}
	p.container = wire.AppendBatch(p.container[:0], nn.cfg.ID, nn.epochID,
		int64(nn.nowTicks()), p.buf, p.ends)
	nn.batchesSent.Add(1)
	nn.batchedFrames.Add(int64(len(p.ends)))
	p.buf, p.ends = p.buf[:0], p.ends[:0]
	return p.container
}
