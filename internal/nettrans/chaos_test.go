package nettrans

import (
	"testing"
	"time"

	"ssbyz/internal/protocol"
	"ssbyz/internal/simnet"
	"ssbyz/internal/simtime"
)

func mustChaos(t *testing.T, conds []simnet.Condition, n int, clamp simtime.Duration) *chaos {
	t.Helper()
	ch, err := compileChaos(conds, n, clamp, 2*clamp)
	if err != nil {
		t.Fatalf("compileChaos: %v", err)
	}
	return ch
}

// TestChaosPartitionMapping: messages crossing the boundary drop in both
// directions inside the window, flow outside it, and intra-group traffic
// is untouched.
func TestChaosPartitionMapping(t *testing.T) {
	ch := mustChaos(t, []simnet.Condition{
		{Kind: simnet.CondPartition, From: 100, Until: 200, Nodes: []protocol.NodeID{3}},
	}, 4, 50)
	cases := []struct {
		from, to protocol.NodeID
		at       simtime.Real
		drop     bool
	}{
		{0, 3, 150, true},  // crossing, inside
		{3, 0, 150, true},  // crossing, other direction
		{0, 1, 150, false}, // same side
		{0, 3, 99, false},  // before window
		{0, 3, 200, false}, // half-open end
	}
	for _, tc := range cases {
		if plan := ch.planSend(tc.from, tc.to, tc.at); plan.drop != tc.drop {
			t.Errorf("planSend(%d→%d @%d) drop=%v, want %v", tc.from, tc.to, tc.at, plan.drop, tc.drop)
		}
	}
}

// TestChaosChurnMapping: sender-side churn drops at send, receiver-side
// at receive; untouched nodes flow.
func TestChaosChurnMapping(t *testing.T) {
	ch := mustChaos(t, []simnet.Condition{
		{Kind: simnet.CondChurn, From: 10, Until: 20, Nodes: []protocol.NodeID{1}},
	}, 4, 50)
	if plan := ch.planSend(1, 0, 15); !plan.drop {
		t.Error("churned sender emitted")
	}
	if plan := ch.planSend(0, 1, 15); plan.drop {
		t.Error("send TO a churned node must drop at receive, not send")
	}
	if !ch.onRecv(1, 15) {
		t.Error("churned receiver accepted")
	}
	if ch.onRecv(0, 15) || ch.onRecv(1, 25) {
		t.Error("churn window leaked")
	}
}

// TestChaosJitterAccumulatesAndClamps: overlapping windows add, the
// final delay clamps to the D/2 budget that keeps delivery inside d.
func TestChaosJitterAccumulatesAndClamps(t *testing.T) {
	ch := mustChaos(t, []simnet.Condition{
		{Kind: simnet.CondJitter, From: 0, Until: 100, Jitter: 30},
		{Kind: simnet.CondJitter, From: 0, Until: 100, Jitter: 30, Nodes: []protocol.NodeID{2}},
	}, 4, 50)
	if plan := ch.planSend(0, 1, 50); plan.delay != 30 || plan.clamped {
		t.Errorf("global window only: delay %d clamped=%v, want 30, unclamped", plan.delay, plan.clamped)
	}
	if plan := ch.planSend(0, 2, 50); plan.delay != 50 || !plan.clamped {
		t.Errorf("overlapping windows: delay %d clamped=%v, want clamp 50", plan.delay, plan.clamped)
	}
	if plan := ch.planSend(0, 1, 150); plan.delay != 0 {
		t.Errorf("outside window: delay %d, want 0", plan.delay)
	}
}

// TestChaosCompileRejectsIllegalSchedules mirrors simnet's validation.
func TestChaosCompileRejectsIllegalSchedules(t *testing.T) {
	cases := []struct {
		name string
		c    simnet.Condition
	}{
		{"unknown kind", simnet.Condition{Kind: "meteor", From: 0, Until: 10}},
		{"empty window", simnet.Condition{Kind: simnet.CondJitter, From: 10, Until: 10}},
		{"partition no nodes", simnet.Condition{Kind: simnet.CondPartition, From: 0, Until: 10}},
		{"churn no nodes", simnet.Condition{Kind: simnet.CondChurn, From: 0, Until: 10}},
		{"negative jitter", simnet.Condition{Kind: simnet.CondJitter, From: 0, Until: 10, Jitter: -1}},
		{"node out of range", simnet.Condition{Kind: simnet.CondChurn, From: 0, Until: 10, Nodes: []protocol.NodeID{9}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := compileChaos([]simnet.Condition{tc.c}, 4, 50, 100); err == nil {
				t.Error("compileChaos accepted an illegal schedule")
			}
		})
	}
}

// TestManifestRoundTrip pins the JSON form the daemon boots from.
func TestManifestRoundTrip(t *testing.T) {
	m := Manifest{
		N: 4, D: 100, TickUS: 100, Transport: TransportUDP,
		EpochUnixNano: time.Now().UnixNano(),
		Nodes:         []string{"127.0.0.1:9001", "127.0.0.1:9002", "127.0.0.1:9003", "127.0.0.1:9004"},
		Conditions: []simnet.Condition{
			{Kind: simnet.CondJitter, From: 0, Until: 1000, Jitter: 10},
		},
	}
	got, err := ParseManifest(m.Marshal())
	if err != nil {
		t.Fatalf("ParseManifest: %v", err)
	}
	if got.N != m.N || got.D != m.D || got.Transport != m.Transport ||
		got.EpochUnixNano != m.EpochUnixNano || len(got.Nodes) != 4 || len(got.Conditions) != 1 {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if got.Params().F != 1 {
		t.Errorf("derived f = %d, want 1", got.Params().F)
	}
	if got.Tick() != 100*time.Microsecond {
		t.Errorf("tick = %v", got.Tick())
	}
	cfg := got.NodeConfig(2, nil, nil)
	if cfg.ID != 2 || cfg.Listen != "127.0.0.1:9003" || len(cfg.Peers) != 4 || cfg.Epoch.IsZero() {
		t.Errorf("NodeConfig: %+v", cfg)
	}
}

// TestManifestValidation covers the rejection taxonomy.
func TestManifestValidation(t *testing.T) {
	valid := Manifest{
		N: 4, D: 100, EpochUnixNano: 1,
		Nodes: []string{"a", "b", "c", "d"},
	}
	mutate := func(f func(*Manifest)) Manifest {
		m := valid
		m.Nodes = append([]string(nil), valid.Nodes...)
		f(&m)
		return m
	}
	cases := []struct {
		name string
		m    Manifest
		ok   bool
	}{
		{"valid", valid, true},
		{"n<=3f", mutate(func(m *Manifest) { m.F = 2 }), false},
		{"missing addr", mutate(func(m *Manifest) { m.Nodes[1] = "" }), false},
		{"addr count", mutate(func(m *Manifest) { m.Nodes = m.Nodes[:3] }), false},
		{"bad transport", mutate(func(m *Manifest) { m.Transport = "carrier-pigeon" }), false},
		{"no epoch", mutate(func(m *Manifest) { m.EpochUnixNano = 0 }), false},
		{"bad condition", mutate(func(m *Manifest) {
			m.Conditions = []simnet.Condition{{Kind: simnet.CondPartition, From: 0, Until: 10}}
		}), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.m.Validate(); (err == nil) != tc.ok {
				t.Errorf("Validate = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}
