package nettrans

import (
	"sync"
	"testing"
	"time"

	"ssbyz/internal/check"
	"ssbyz/internal/core"
	"ssbyz/internal/protocol"
	"ssbyz/internal/simnet"
	"ssbyz/internal/simtime"
	"ssbyz/internal/wire"
)

// liveParams sizes the committee for wall-clock runs on a possibly loaded
// host: d = 250 ticks of 100µs = 25ms, generous enough that scheduling
// jitter does not trip the deadline drops even while other test packages
// saturate the machine's cores.
func liveParams(n int) protocol.Params {
	pp := protocol.DefaultParams(n)
	pp.D = 250
	return pp
}

// initiateTick asks node g to initiate v inside its event loop and
// returns the EvInitiate trace instant as the agreement's t0 (polling the
// recorder, since the initiation runs asynchronously).
func initiateTick(t *testing.T, c *Cluster, g protocol.NodeID, v protocol.Value) simtime.Real {
	t.Helper()
	c.Do(g, func(n protocol.Node) {
		if err := n.(*core.Node).InitiateAgreement(v); err != nil {
			t.Errorf("InitiateAgreement: %v", err)
		}
	})
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, ev := range c.Recorder().ByKind(protocol.EvInitiate) {
			if ev.Node == g && ev.M == v {
				return ev.RT
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("initiation never recorded")
		}
		time.Sleep(time.Millisecond)
	}
}

// runAgreement runs one agreement on a fresh cluster of the given
// transport and feeds the collected trace through the full property
// battery: the round trip the subsystem exists for.
func runAgreement(t *testing.T, transport string, n int, conditions []simnet.Condition,
	faulty map[protocol.NodeID]protocol.Node) (*Cluster, Stats) {
	t.Helper()
	pp := liveParams(n)
	c, err := NewCluster(ClusterConfig{
		Params: pp, Transport: transport, Conditions: conditions, Faulty: faulty,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	t.Cleanup(c.Stop)
	t0 := initiateTick(t, c, 0, "live-v")
	if done := c.AwaitDecisions(0, "live-v", 10*time.Second); done != len(c.correct) {
		t.Fatalf("only %d/%d correct nodes decided (stats %+v)", done, len(c.correct), c.Stats())
	}
	stats := c.Stats()
	res := c.Result(simtime.Duration(c.NowTicks()) + 1)
	var violations []check.Violation
	for g := 0; g < pp.N; g++ {
		violations = append(violations, check.All(res, protocol.NodeID(g))...)
	}
	violations = append(violations, check.Validity(res, 0, t0, "live-v")...)
	if len(violations) != 0 {
		t.Fatalf("battery violations over the live trace: %v", violations)
	}
	return c, stats
}

// TestUDPClusterAgreementBatteryClean is the subsystem's core promise: a
// loopback UDP cluster (datagram-per-message, deadline drops, real
// serialization) completes an agreement whose trace passes the full
// property battery.
func TestUDPClusterAgreementBatteryClean(t *testing.T) {
	_, stats := runAgreement(t, TransportUDP, 4, nil, nil)
	if stats.Sent == 0 || stats.Received == 0 {
		t.Errorf("no traffic counted: %+v", stats)
	}
	if stats.AuthDrops != 0 || stats.EpochDrops != 0 || stats.DecodeDrops != 0 {
		t.Errorf("unexpected drops on a clean loopback run: %+v", stats)
	}
}

// TestSevenNodeUDP covers the acceptance-bar committee size (n=7, f=2).
func TestSevenNodeUDP(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hundred-ms live run; skipped in -short")
	}
	runAgreement(t, TransportUDP, 7, nil, nil)
}

// TestTCPClusterAgreementBatteryClean runs the lossless stream baseline.
func TestTCPClusterAgreementBatteryClean(t *testing.T) {
	_, stats := runAgreement(t, TransportTCP, 4, nil, nil)
	if stats.LateDrops != 0 {
		t.Errorf("TCP must not deadline-drop: %+v", stats)
	}
}

// TestChaosConditionsAgainstLiveSockets replays a PR4-style condition
// schedule against real sockets: a jitter window across the whole run
// and a partition window around a crash-faulty node. The battery must
// stay clean (drops only touch the faulty node) and the partition must
// actually eat traffic.
func TestChaosConditionsAgainstLiveSockets(t *testing.T) {
	pp := liveParams(4)
	horizon := simtime.Real(200 * pp.D)
	conditions := []simnet.Condition{
		{Kind: simnet.CondJitter, From: 0, Until: horizon, Jitter: pp.D / 4},
		{Kind: simnet.CondPartition, From: 0, Until: horizon, Nodes: []protocol.NodeID{3}},
	}
	faulty := map[protocol.NodeID]protocol.Node{3: nil}
	_, stats := runAgreement(t, TransportUDP, 4, conditions, faulty)
	if stats.ChaosDrops == 0 {
		t.Errorf("partition around node 3 dropped nothing: %+v", stats)
	}
}

// TestInitiateSameValueTwiceGetsFreshT0 is the regression test for the
// Validity-anchor bug: a General legally re-initiating the SAME value
// (Δv apart, per IG2) must get the second initiation's EvInitiate
// instant as t0, not a stale match on the first one's.
func TestInitiateSameValueTwiceGetsFreshT0(t *testing.T) {
	if testing.Short() {
		t.Skip("waits out Δv of wall time; skipped in -short")
	}
	pp := protocol.DefaultParams(4)
	pp.D = 50 // d = 5ms keeps Δv = 15d + 2Δrmv ≈ 450ms of wall time
	c, err := NewCluster(ClusterConfig{Params: pp})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	const v = protocol.Value("same")
	t0a, err := c.Initiate(0, v, 5*time.Second)
	if err != nil {
		t.Fatalf("first Initiate: %v", err)
	}
	if done := c.AwaitDecisions(0, v, 10*time.Second); done != pp.N {
		t.Fatalf("first agreement: %d/%d decided", done, pp.N)
	}
	// Wait out the same-value spacing IG2 demands, plus margin.
	time.Sleep(time.Duration(pp.DeltaV()+4*pp.D) * 100 * time.Microsecond)
	t0b, err := c.Initiate(0, v, 5*time.Second)
	if err != nil {
		t.Fatalf("second Initiate: %v", err)
	}
	if t0b <= t0a {
		t.Fatalf("second initiation's t0=%d does not postdate the first's t0=%d (stale EvInitiate match)", t0b, t0a)
	}
}

// stubNode records deliveries for white-box receive-path tests.
type stubNode struct {
	mu   sync.Mutex
	msgs []protocol.Message
}

func (s *stubNode) Start(protocol.Runtime)    {}
func (s *stubNode) OnTimer(protocol.TimerTag) {}
func (s *stubNode) OnMessage(_ protocol.NodeID, m protocol.Message) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.msgs = append(s.msgs, m)
}

func (s *stubNode) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.msgs)
}

// receiverHarness starts one NetNode (id 0) and returns it plus a raw
// socket bound as peer 1, for injecting hand-crafted datagrams.
func receiverHarness(t *testing.T) (*NetNode, *stubNode, *Socket) {
	t.Helper()
	pp := protocol.Params{N: 2, F: 0, D: 100}
	s0, err := ListenSocket(TransportUDP, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s1, err := ListenSocket(TransportUDP, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s1.Close)
	stub := &stubNode{}
	nn, err := StartWith(NodeConfig{
		ID: 0, Params: pp, Transport: TransportUDP,
		Peers: []string{s0.Addr(), s1.Addr()},
		Epoch: time.Now(),
	}, s0, stub)
	if err != nil {
		t.Fatalf("StartWith: %v", err)
	}
	t.Cleanup(nn.Stop)
	return nn, stub, s1
}

// inject writes one raw datagram from the peer-1 socket to the node.
func inject(t *testing.T, nn *NetNode, from *Socket, b []byte) {
	t.Helper()
	ua := nn.trans.(*udpTransport).conn.LocalAddr()
	if _, err := from.udp.WriteTo(b, ua); err != nil {
		t.Fatalf("inject: %v", err)
	}
}

// await polls until pred holds or the deadline passes.
func await(t *testing.T, what string, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for !pred() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func frameFor(nn *NetNode, from protocol.NodeID, sent int64, epoch uint64) []byte {
	payload := wire.AppendMessage(nil, protocol.Message{Kind: protocol.Echo, G: 0, M: "x", K: 1})
	return wire.AppendFrame(nil, wire.Frame{
		Kind: wire.FrameMessage, From: from, Epoch: epoch, Sent: sent, Payload: payload,
	})
}

// TestReceiveAcceptsAuthenticFrame pins the happy path end to end at the
// datagram level.
func TestReceiveAcceptsAuthenticFrame(t *testing.T) {
	nn, stub, s1 := receiverHarness(t)
	inject(t, nn, s1, frameFor(nn, 1, int64(nn.nowTicks()), nn.epochID))
	await(t, "delivery", func() bool { return stub.count() == 1 })
	if s := nn.Stats(); s.Received != 1 {
		t.Errorf("stats: %+v", s)
	}
}

// TestDeadlineDropEnforcesBoundedDelay: a frame sent more than d ago is
// transport loss, never a late delivery (the model's axiom, enforced).
func TestDeadlineDropEnforcesBoundedDelay(t *testing.T) {
	nn, stub, s1 := receiverHarness(t)
	stale := int64(nn.nowTicks()) - 10*int64(nn.cfg.Params.D)
	inject(t, nn, s1, frameFor(nn, 1, stale, nn.epochID))
	await(t, "late drop", func() bool { return nn.Stats().LateDrops == 1 })
	if stub.count() != 0 {
		t.Error("late frame was delivered")
	}
}

// TestAuthDropRejectsForgedSender: a datagram claiming node 0's identity
// from node 1's socket fails the source-address check — the transport
// re-establishes the paper's sender-identification assumption.
func TestAuthDropRejectsForgedSender(t *testing.T) {
	nn, stub, s1 := receiverHarness(t)
	inject(t, nn, s1, frameFor(nn, 0, int64(nn.nowTicks()), nn.epochID)) // claims to be node 0
	await(t, "auth drop", func() bool { return nn.Stats().AuthDrops == 1 })
	if stub.count() != 0 {
		t.Error("forged frame was delivered")
	}
}

// TestEpochDropRejectsStaleIncarnation: frames of a previous cluster on a
// reused port never reach protocol code.
func TestEpochDropRejectsStaleIncarnation(t *testing.T) {
	nn, stub, s1 := receiverHarness(t)
	inject(t, nn, s1, frameFor(nn, 1, int64(nn.nowTicks()), nn.epochID+1))
	await(t, "epoch drop", func() bool { return nn.Stats().EpochDrops == 1 })
	if stub.count() != 0 {
		t.Error("stale-epoch frame was delivered")
	}
}

// TestCorruptDatagramsAreCountedNotFatal: garbage, truncations, and
// trailing bytes increment DecodeDrops and never panic or deliver.
func TestCorruptDatagramsAreCountedNotFatal(t *testing.T) {
	nn, stub, s1 := receiverHarness(t)
	good := frameFor(nn, 1, int64(nn.nowTicks()), nn.epochID)
	inject(t, nn, s1, []byte{0xde, 0xad, 0xbe, 0xef})
	inject(t, nn, s1, good[:len(good)/2])
	inject(t, nn, s1, append(append([]byte{}, good...), 0x00)) // trailing byte
	await(t, "decode drops", func() bool { return nn.Stats().DecodeDrops == 3 })
	if stub.count() != 0 {
		t.Error("corrupt datagram was delivered")
	}
	// The path still works afterwards.
	inject(t, nn, s1, frameFor(nn, 1, int64(nn.nowTicks()), nn.epochID))
	await(t, "post-corruption delivery", func() bool { return stub.count() == 1 })
}

// TestClusterStopIsIdempotentAndTotal mirrors livenet's lifecycle
// contract on the socket transport.
func TestClusterStopIsIdempotentAndTotal(t *testing.T) {
	pp := liveParams(4)
	c, err := NewCluster(ClusterConfig{Params: pp})
	if err != nil {
		t.Fatal(err)
	}
	c.Do(0, func(n protocol.Node) { _ = n.(*core.Node).InitiateAgreement("doomed") })
	time.Sleep(5 * time.Millisecond)
	c.Stop()
	c.Stop()
	before := c.Recorder().Len()
	c.Do(0, func(n protocol.Node) { _ = n.(*core.Node).InitiateAgreement("late") })
	time.Sleep(10 * time.Millisecond)
	if after := c.Recorder().Len(); after != before {
		t.Errorf("events recorded after Stop: %d -> %d", before, after)
	}
}

// TestStartWithValidation covers config rejection.
func TestStartWithValidation(t *testing.T) {
	pp := liveParams(4)
	cases := []struct {
		name string
		cfg  NodeConfig
	}{
		{"bad params", NodeConfig{Params: protocol.Params{N: 3, F: 1, D: 10}, Epoch: time.Now(), Peers: []string{"a", "b", "c"}}},
		{"peer count", NodeConfig{Params: pp, Epoch: time.Now(), Peers: []string{"a"}}},
		{"no epoch", NodeConfig{Params: pp, Peers: []string{"a", "b", "c", "d"}}},
		{"bad id", NodeConfig{ID: 9, Params: pp, Epoch: time.Now(), Peers: []string{"a", "b", "c", "d"}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := ListenSocket(TransportUDP, "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			if _, err := StartWith(tc.cfg, s, &stubNode{}); err == nil {
				t.Error("StartWith accepted an invalid config")
			}
		})
	}
}
