package nettrans

import (
	"fmt"

	"ssbyz/internal/protocol"
	"ssbyz/internal/simnet"
	"ssbyz/internal/simtime"
)

// This file maps the scenario engine's ConditionSchedule (PR 4's
// simnet.Condition vocabulary: timed partitions, jitter windows, node
// churn) onto the live socket transport, so generated scenarios replay
// against real sockets. The simulator applies conditions at the
// deterministic delivery instant; a real network has no such instant to
// hook, so the live mapping evaluates windows against wall-clock ticks
// since the cluster epoch, split across the two ends of a send:
//
//   - partition: evaluated at the SEND instant — a message crossing the
//     partition boundary (either direction) inside the window is dropped
//     before it reaches the socket;
//   - churn, sender side: a detached node cannot emit — dropped at send;
//   - churn, receiver side: evaluated at the RECEIVE instant — a frame
//     arriving at a detached node is discarded (its timers keep running,
//     like the paper's recovering nodes);
//   - jitter: extra artificial delay before the socket write,
//     accumulated across overlapping windows and clamped to D/2 so the
//     end-to-end delivery stays inside the paper's d bound under nominal
//     scheduling (the other half of D absorbs host jitter).
//
// Every node of a cluster carries the same schedule (the manifest ships
// it), so both ends agree on the windows up to OS clock quality. The
// model-legality rule is the scenario engine's: drop windows should only
// name faulty nodes, or the battery's delivery-axiom-dependent checks are
// void (DESIGN.md §6, §7).

// chaos is a compiled condition schedule. The zero-length schedule is
// free: every hook returns immediately.
type chaos struct {
	conds     []liveCond
	maxJitter simtime.Duration
}

type liveCond struct {
	kind        string
	from, until simtime.Real
	member      []bool // indexed by NodeID; nil = every node
	jitter      simtime.Duration
}

func (c *liveCond) active(at simtime.Real) bool {
	return at >= c.from && at < c.until
}

func (c *liveCond) has(id protocol.NodeID) bool {
	return c.member == nil || (int(id) < len(c.member) && c.member[int(id)])
}

// compileChaos validates the schedule against the cluster size and
// resolves node sets to bitmaps. The vocabulary and legality rules are
// simnet's; maxJitter is the live clamp (D/2).
func compileChaos(conds []simnet.Condition, n int, maxJitter simtime.Duration) (*chaos, error) {
	ch := &chaos{maxJitter: maxJitter}
	for i, c := range conds {
		lc := liveCond{kind: c.Kind, from: c.From, until: c.Until, jitter: c.Jitter}
		switch c.Kind {
		case simnet.CondPartition, simnet.CondChurn:
			if len(c.Nodes) == 0 {
				return nil, fmt.Errorf("nettrans: condition %d (%s) needs a node set", i, c.Kind)
			}
		case simnet.CondJitter:
			if c.Jitter < 0 {
				return nil, fmt.Errorf("nettrans: condition %d has negative jitter", i)
			}
		default:
			return nil, fmt.Errorf("nettrans: condition %d has unknown kind %q", i, c.Kind)
		}
		if c.Until <= c.From {
			return nil, fmt.Errorf("nettrans: condition %d window [%d,%d) is empty", i, c.From, c.Until)
		}
		if len(c.Nodes) > 0 {
			lc.member = make([]bool, n)
			for _, id := range c.Nodes {
				if id < 0 || int(id) >= n {
					return nil, fmt.Errorf("nettrans: condition %d names node %d outside [0,%d)", i, id, n)
				}
				lc.member[int(id)] = true
			}
		}
		ch.conds = append(ch.conds, lc)
	}
	return ch, nil
}

// onSend resolves the schedule at the send instant: the scripted jitter
// delay (clamped) and whether a partition or sender-side churn window
// eats the message.
func (ch *chaos) onSend(from, to protocol.NodeID, now simtime.Real) (delay simtime.Duration, drop bool) {
	for i := range ch.conds {
		c := &ch.conds[i]
		switch c.kind {
		case simnet.CondPartition:
			if c.active(now) && c.has(from) != c.has(to) {
				return 0, true
			}
		case simnet.CondChurn:
			if c.active(now) && c.has(from) {
				return 0, true
			}
		case simnet.CondJitter:
			if c.active(now) && (c.member == nil || c.has(from) || c.has(to)) {
				delay += c.jitter
			}
		}
	}
	if delay > ch.maxJitter {
		delay = ch.maxJitter
	}
	return delay, false
}

// onRecv reports whether a receiver-side churn window discards a frame
// arriving at node `to` now.
func (ch *chaos) onRecv(to protocol.NodeID, now simtime.Real) bool {
	for i := range ch.conds {
		c := &ch.conds[i]
		if c.kind == simnet.CondChurn && c.active(now) && c.has(to) {
			return true
		}
	}
	return false
}
