package nettrans

import (
	"fmt"

	"ssbyz/internal/protocol"
	"ssbyz/internal/simnet"
	"ssbyz/internal/simtime"
)

// This file maps the scenario engine's condition schedule (the
// simnet.Condition vocabulary) onto the live socket transport, so
// generated scenarios replay against real sockets — and, since PR 8, it
// is also the byte-level attack engine: the wire-level kinds (wan,
// duplicate, reorder, corrupt, replay, forge) manipulate encoded frames
// on their way to the socket, and the receive pipeline's defenses (codec
// validation, epoch check, source authentication, the d deadline,
// duplicate suppression) are expected to reject them, each rejection
// counted per class. The simulator REJECTS these kinds — simulated
// messages have no bytes to attack (internal/simnet/conditions.go).
//
// The classic kinds map as in PR 5:
//
//   - partition: evaluated at the SEND instant — a message crossing the
//     partition boundary (either direction) inside the window is dropped
//     before it reaches the socket;
//   - churn, sender side: a detached node cannot emit — dropped at send;
//   - churn, receiver side: evaluated at the RECEIVE instant — a frame
//     arriving at a detached node is discarded (its timers keep running,
//     like the paper's recovering nodes);
//   - jitter: extra artificial delay before the socket write.
//
// Environment-class delay (jitter + wan base/jitter/rate deferral) is
// accumulated and clamped to D/2 so the end-to-end delivery stays inside
// the paper's d bound under nominal scheduling (the other half of D
// absorbs host jitter); the clamp used to be silent and is now counted
// (Stats.Clamps). Attack-class delay (a reorder hold) is deliberately
// NOT clamped: holding a frame past d is an attack on the bounded-delay
// axiom, and the receiver's deadline drop is the defense.
//
// All mutable chaos state (per-link sequence counters, rate buckets, the
// replay tape) is touched only from NetNode.Send, which runs on the
// node's single event-loop goroutine — no locks needed, and under
// virtual time the whole attack schedule is deterministic.
//
// Every node of a cluster carries the same schedule (the manifest ships
// it), so both ends agree on the windows up to OS clock quality. The
// model-legality rule is the scenario engine's: drop-class windows
// (partition, churn, corrupt) should only name faulty nodes, or the
// battery's delivery-axiom-dependent checks are void (DESIGN.md §6, §7).

// tapeLen bounds the replay tape: the attacker remembers this many
// recent outgoing frames.
const tapeLen = 64

// chaos is a compiled condition schedule plus the attack engine's
// per-sender state. The zero-length schedule is free: every hook
// returns immediately.
type chaos struct {
	conds     []liveCond
	maxJitter simtime.Duration
	d         simtime.Duration

	needTape bool
	tape     []tapeEntry // ring buffer, send-loop only
	tapeAt   int
	tapeSize int
}

// tapeEntry is one captured outgoing frame the replay attack can
// re-emit: enough to rebuild the envelope with its original send tick.
type tapeEntry struct {
	to      protocol.NodeID
	sent    int64
	payload []byte
}

type liveCond struct {
	kind        string
	from, until simtime.Real
	member      []bool // indexed by NodeID; nil = every node
	jitter      simtime.Duration

	// wan fields
	group  []int // node -> region index, -1 = no region
	matrix [][]simtime.Duration
	rate   int

	// attack shaping
	stride     int
	copies     int
	lag        simtime.Duration
	crossEpoch bool

	// mutable per-destination state (send-loop only)
	seq        []int64 // frames seen per directed link, for stride/hash
	rateBucket []int64 // current d-window index per link
	rateCount  []int64 // frames in the current window per link
}

func (c *liveCond) active(at simtime.Real) bool {
	return at >= c.from && at < c.until
}

func (c *liveCond) has(id protocol.NodeID) bool {
	return c.member == nil || (int(id) < len(c.member) && c.member[int(id)])
}

// strideHit advances the link's sequence counter and reports whether
// this frame is one the attack acts on (every stride-th, starting with
// the first). The pre-increment sequence value is returned for the
// deterministic per-frame hash.
func (c *liveCond) strideHit(to protocol.NodeID) (int64, bool) {
	s := c.seq[to]
	c.seq[to]++
	stride := c.stride
	if stride <= 1 {
		return s, true
	}
	return s, s%int64(stride) == 0
}

// compileChaos validates the schedule against the cluster size and
// resolves node sets to bitmaps. The vocabulary and structural rules are
// simnet's (ValidateCondition with live=true); maxJitter is the
// environment-delay clamp (D/2) and d the model bound (rate buckets,
// default replay lag, default reorder hold).
func compileChaos(conds []simnet.Condition, n int, maxJitter, d simtime.Duration) (*chaos, error) {
	ch := &chaos{maxJitter: maxJitter, d: d}
	for i, c := range conds {
		if err := simnet.ValidateCondition(i, c, n, true); err != nil {
			return nil, fmt.Errorf("nettrans: %w", err)
		}
		lc := liveCond{
			kind: c.Kind, from: c.From, until: c.Until, jitter: c.Jitter,
			rate: c.Rate, stride: c.Stride, copies: c.Copies,
			lag: c.Lag, crossEpoch: c.CrossEpoch,
		}
		if len(c.Nodes) > 0 {
			lc.member = make([]bool, n)
			for _, id := range c.Nodes {
				lc.member[int(id)] = true
			}
		}
		switch c.Kind {
		case simnet.CondWAN:
			lc.group = make([]int, n)
			for id := range lc.group {
				lc.group[id] = -1
			}
			for gi, grp := range c.Groups {
				for _, id := range grp {
					lc.group[int(id)] = gi
				}
			}
			lc.matrix = c.Matrix
			if lc.rate > 0 {
				lc.rateBucket = make([]int64, n)
				lc.rateCount = make([]int64, n)
				for id := range lc.rateBucket {
					lc.rateBucket[id] = -1
				}
			}
		case simnet.CondReorder:
			if lc.jitter == 0 {
				lc.jitter = d / 2 // in-bound hold: reorder, not loss
			}
		case simnet.CondReplay:
			if lc.lag == 0 && !lc.crossEpoch {
				lc.lag = d + 1 // stale enough to trip the deadline drop
			}
			ch.needTape = true
		case simnet.CondDuplicate:
			if lc.copies == 0 {
				lc.copies = 1
			}
		}
		switch c.Kind {
		case simnet.CondWAN, simnet.CondDuplicate, simnet.CondReorder,
			simnet.CondCorrupt, simnet.CondReplay, simnet.CondForge:
			lc.seq = make([]int64, n)
		}
		ch.conds = append(ch.conds, lc)
	}
	if ch.needTape {
		ch.tape = make([]tapeEntry, tapeLen)
	}
	return ch, nil
}

// sendPlan is what the schedule orders for one outgoing frame. The
// caller (NetNode.Send) executes it and owns every per-class counter.
type sendPlan struct {
	drop  bool             // partition / sender churn ate the message
	delay simtime.Duration // clamped environment delay + reorder hold

	clamped      bool // environment delay hit the D/2 clamp
	rateDeferred bool // a wan bandwidth cap deferred this frame
	reorderHeld  bool // a reorder window holds this frame

	corrupt     bool   // flip one byte of the encoded frame
	corruptSeed uint64 // deterministic byte selector (mod frame length)

	dups int // extra copies a duplicate window emits

	forge protocol.NodeID // claimed sender of an extra forged frame; -1 = none

	replay      bool // re-emit a tape entry
	replayCross bool // ... claiming the next cluster incarnation
	replayLag   simtime.Duration
}

// planSend resolves the schedule at the send instant. Mutates per-link
// attack state; call it exactly once per protocol send, from the event
// loop.
func (ch *chaos) planSend(from, to protocol.NodeID, now simtime.Real) sendPlan {
	plan := sendPlan{forge: -1}
	var envDelay simtime.Duration
	for i := range ch.conds {
		c := &ch.conds[i]
		if !c.active(now) {
			continue
		}
		switch c.kind {
		case simnet.CondPartition:
			if c.has(from) != c.has(to) {
				plan.drop = true
				return plan
			}
		case simnet.CondChurn:
			if c.has(from) {
				plan.drop = true
				return plan
			}
		case simnet.CondJitter:
			if c.member == nil || c.has(from) || c.has(to) {
				envDelay += c.jitter
			}
		case simnet.CondWAN:
			seq, _ := c.strideHit(to)
			ga, gb := c.group[from], c.group[to]
			if ga >= 0 && gb >= 0 {
				envDelay += c.matrix[ga][gb]
			}
			if c.jitter > 0 {
				envDelay += simtime.Duration(mix64(uint64(i), uint64(from), uint64(to), uint64(seq)) % uint64(c.jitter+1))
			}
			if c.rate > 0 {
				bucket := int64((now - c.from) / simtime.Real(ch.d))
				if c.rateBucket[to] != bucket {
					c.rateBucket[to] = bucket
					c.rateCount[to] = 0
				}
				c.rateCount[to]++
				if c.rateCount[to] > int64(c.rate) {
					// Over the cap: defer to the start of the next window.
					bucketEnd := c.from + simtime.Real(bucket+1)*simtime.Real(ch.d)
					envDelay += simtime.Duration(bucketEnd - now)
					plan.rateDeferred = true
				}
			}
		case simnet.CondDuplicate:
			if c.member == nil || c.has(from) || c.has(to) {
				if _, hit := c.strideHit(to); hit {
					plan.dups += c.copies
				}
			}
		case simnet.CondReorder:
			if c.member == nil || c.has(from) || c.has(to) {
				if _, hit := c.strideHit(to); hit {
					plan.delay += c.jitter // attack hold: NOT clamped
					plan.reorderHeld = true
				}
			}
		case simnet.CondCorrupt:
			if c.has(from) {
				if seq, hit := c.strideHit(to); hit {
					plan.corrupt = true
					plan.corruptSeed = mix64(uint64(i), uint64(from), uint64(to), uint64(seq))
				}
			}
		case simnet.CondReplay:
			if c.has(from) {
				if _, hit := c.strideHit(to); hit {
					plan.replay = true
					plan.replayCross = c.crossEpoch
					plan.replayLag = c.lag
				}
			}
		case simnet.CondForge:
			if c.has(from) {
				if seq, hit := c.strideHit(to); hit {
					// Claim some OTHER node's identity, deterministically.
					n := len(c.seq)
					v := protocol.NodeID((int(from) + 1 + int(mix64(uint64(i), uint64(from), uint64(to), uint64(seq))%uint64(n-1))) % n)
					plan.forge = v
				}
			}
		}
	}
	if envDelay > ch.maxJitter {
		envDelay = ch.maxJitter
		plan.clamped = true
	}
	plan.delay += envDelay
	return plan
}

// capture records one outgoing frame on the replay tape (send loop
// only; no-op unless a replay window exists).
func (ch *chaos) capture(to protocol.NodeID, sent int64, payload []byte) {
	if !ch.needTape {
		return
	}
	e := &ch.tape[ch.tapeAt]
	e.to = to
	e.sent = sent
	e.payload = append(e.payload[:0], payload...)
	ch.tapeAt = (ch.tapeAt + 1) % tapeLen
	if ch.tapeSize < tapeLen {
		ch.tapeSize++
	}
}

// pickReplay chooses the tape entry a replay attack re-emits: for a
// cross-epoch replay any frame works (the epoch alone damns it), so the
// newest is used; for a stale replay, the oldest frame at least lag
// ticks old. Returns nil when the tape has nothing suitable yet.
func (ch *chaos) pickReplay(now simtime.Real, lag simtime.Duration, cross bool) *tapeEntry {
	if ch.tapeSize == 0 {
		return nil
	}
	if cross {
		newest := (ch.tapeAt - 1 + tapeLen) % tapeLen
		return &ch.tape[newest]
	}
	oldest := 0
	if ch.tapeSize == tapeLen {
		oldest = ch.tapeAt
	}
	for k := 0; k < ch.tapeSize; k++ {
		e := &ch.tape[(oldest+k)%tapeLen]
		if int64(now)-e.sent >= int64(lag) {
			return e
		}
	}
	return nil
}

// onRecv reports whether a receiver-side churn window discards a frame
// arriving at node `to` now.
func (ch *chaos) onRecv(to protocol.NodeID, now simtime.Real) bool {
	for i := range ch.conds {
		c := &ch.conds[i]
		if c.kind == simnet.CondChurn && c.active(now) && c.has(to) {
			return true
		}
	}
	return false
}

// mix64 is a splitmix64-style hash over the attack coordinates — the
// deterministic entropy source of per-frame WAN jitter, corruption byte
// selection, and forged-identity choice (no shared RNG: the schedule
// must replay byte-identically under virtual time regardless of node
// scheduling).
func mix64(a, b, c, d uint64) uint64 {
	z := a*0x9e3779b97f4a7c15 ^ b*0xbf58476d1ce4e5b9 ^ c*0x94d049bb133111eb ^ d + 0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
