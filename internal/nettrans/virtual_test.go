package nettrans

import (
	"bytes"
	"encoding/binary"
	"sort"
	"testing"
	"time"

	"ssbyz/internal/check"
	"ssbyz/internal/clock"
	"ssbyz/internal/protocol"
	"ssbyz/internal/simtime"
	"ssbyz/internal/wire"
)

// virtualParams sizes a virtual cluster like the L1 live cells: d = 250
// ticks of 100µs — except no wall clock is involved, the numbers only
// feed the protocol constants.
func virtualParams(n int) protocol.Params {
	pp := protocol.DefaultParams(n)
	pp.D = 250
	return pp
}

// goldenRun executes one seeded 7-node virtual UDP agreement to a fixed
// virtual horizon and returns the run's two captured byte streams — the
// trace (every TraceEvent encoded as a FrameTrace wire frame, exactly
// the daemon control-stream encoding) and the wire record (every frame
// the virtual wire carried, with from/to headers) — plus the battery
// verdict count and the decide count.
func goldenRun(t *testing.T, seed int64) (traceBlob, wireBlob []byte, decided, violations int) {
	t.Helper()
	pp := virtualParams(7)
	clk := clock.NewFake(time.Time{})
	c, err := NewCluster(ClusterConfig{
		Params: pp,
		Tick:   100 * time.Microsecond,
		Clock:  clk,
		Seed:   seed,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Stop()

	t0, err := c.Initiate(0, "golden", time.Second)
	if err != nil {
		t.Fatalf("Initiate: %v", err)
	}
	horizon := simtime.Duration(pp.DeltaAgr() + 20*pp.D)
	c.StepUntil(func() bool { return false }, horizon)
	decided = c.countDecided(0, "golden")

	res := c.Result(horizon)
	lr := &check.LiveResult{Result: res}
	violations = len(lr.Battery([]check.LiveInitiation{{G: 0, V: "golden", T0: t0}}))

	epochID := uint64(c.epoch.UnixNano())
	// Canonicalize the trace the way the daemon collector merges per-node
	// control streams: by (tick, node), keeping each node's own event
	// order. Node event loops append to the shared recorder concurrently
	// within a fake-clock cascade, so the raw cross-node arrival order is
	// scheduler noise; each node's stream and every timestamp are exact.
	events := c.rec.Events()
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].RT != events[j].RT {
			return events[i].RT < events[j].RT
		}
		return events[i].Node < events[j].Node
	})
	for _, ev := range events {
		traceBlob = wire.AppendFrame(traceBlob, wire.Frame{
			Kind:    wire.FrameTrace,
			From:    ev.Node,
			Epoch:   epochID,
			Sent:    int64(ev.RT),
			Payload: wire.AppendTraceEvent(nil, ev),
		})
	}
	for _, fr := range c.Frames() {
		var hdr [8]byte
		binary.BigEndian.PutUint32(hdr[0:4], uint32(fr.From))
		binary.BigEndian.PutUint32(hdr[4:8], uint32(fr.To))
		wireBlob = append(wireBlob, hdr[:]...)
		wireBlob = append(wireBlob, fr.Bytes...)
	}
	return traceBlob, wireBlob, decided, violations
}

// TestVirtualGoldenRecordReplay is the record/replay golden test: two
// executions of the same seeded 7-node virtual-time UDP run must be
// byte-identical in both their wire record and their trace stream, the
// battery must be clean, and the captured trace — decoded back from its
// wire framing like a daemon control stream — must reproduce the exact
// verdict through check.LiveResult.
func TestVirtualGoldenRecordReplay(t *testing.T) {
	trace1, wire1, decided1, viol1 := goldenRun(t, 42)
	trace2, wire2, decided2, viol2 := goldenRun(t, 42)

	if decided1 != 7 {
		t.Fatalf("decided = %d, want 7", decided1)
	}
	if viol1 != 0 {
		t.Fatalf("battery reported %d violations on a healthy virtual run", viol1)
	}
	if decided2 != decided1 || viol2 != viol1 {
		t.Fatalf("verdict differs across executions: decided %d vs %d, violations %d vs %d",
			decided1, decided2, viol1, viol2)
	}
	if !bytes.Equal(wire1, wire2) {
		t.Fatalf("wire record differs across executions: %d vs %d bytes", len(wire1), len(wire2))
	}
	if !bytes.Equal(trace1, trace2) {
		t.Fatalf("trace stream differs across executions: %d vs %d bytes", len(trace1), len(trace2))
	}
	if len(wire1) == 0 || len(trace1) == 0 {
		t.Fatal("empty capture: the virtual wire recorded nothing")
	}

	// Replay: decode the captured trace frames and re-run the battery.
	var events []protocol.TraceEvent
	var t0 simtime.Real
	rest := trace1
	for len(rest) > 0 {
		f, n, err := wire.DecodeFrame(rest)
		if err != nil {
			t.Fatalf("replay: frame decode: %v", err)
		}
		rest = rest[n:]
		if f.Kind != wire.FrameTrace {
			t.Fatalf("replay: unexpected frame kind %v", f.Kind)
		}
		ev, _, err := wire.DecodeTraceEvent(f.Payload)
		if err != nil {
			t.Fatalf("replay: trace decode: %v", err)
		}
		if ev.Kind == protocol.EvInitiate && ev.Node == 0 && ev.M == "golden" {
			t0 = ev.RT
		}
		events = append(events, ev)
	}
	pp := virtualParams(7)
	correct := []protocol.NodeID{0, 1, 2, 3, 4, 5, 6}
	res := BuildResult(pp, events, correct, simtime.Duration(pp.DeltaAgr()+20*pp.D))
	lr := &check.LiveResult{Result: res}
	if v := lr.Battery([]check.LiveInitiation{{G: 0, V: "golden", T0: t0}}); len(v) != 0 {
		t.Fatalf("replayed trace reports %d violations: %v", len(v), v)
	}
	replayDecides := 0
	for _, d := range res.Decisions(0) {
		if d.Decided && d.Value == "golden" {
			replayDecides++
		}
	}
	if replayDecides != decided1 {
		t.Fatalf("replay decides = %d, live decides = %d", replayDecides, decided1)
	}
}

// TestVirtualSeedsDiverge guards the capture against a trivially
// constant wire: different seeds must produce different delivery
// schedules (if they did not, the determinism pin above would be
// vacuous).
func TestVirtualSeedsDiverge(t *testing.T) {
	_, w1, _, _ := goldenRun(t, 1)
	_, w2, _, _ := goldenRun(t, 2)
	if bytes.Equal(w1, w2) {
		t.Fatal("wire records of different seeds are identical — the seed is not reaching the wire")
	}
}

// TestVirtualTCPAndChaos smoke-tests the other transport and the chaos
// layer under virtual time: a lossless TCP run decides, and a UDP run
// with a crashed node still decides on the surviving quorum.
func TestVirtualTCPAndChaos(t *testing.T) {
	t.Run("tcp", func(t *testing.T) {
		pp := virtualParams(4)
		clk := clock.NewFake(time.Time{})
		c, err := NewCluster(ClusterConfig{
			Params: pp, Tick: 100 * time.Microsecond,
			Transport: TransportTCP, Clock: clk, Seed: 3,
		})
		if err != nil {
			t.Fatalf("NewCluster: %v", err)
		}
		defer c.Stop()
		if _, err := c.Initiate(0, "tcp-v", time.Second); err != nil {
			t.Fatalf("Initiate: %v", err)
		}
		budget := time.Duration(pp.DeltaAgr()+20*pp.D) * c.Tick()
		if done := c.AwaitDecisions(0, "tcp-v", budget); done != 4 {
			t.Fatalf("decided = %d/4", done)
		}
	})
	t.Run("crash", func(t *testing.T) {
		pp := virtualParams(7)
		clk := clock.NewFake(time.Time{})
		c, err := NewCluster(ClusterConfig{
			Params: pp, Tick: 100 * time.Microsecond,
			Clock: clk, Seed: 4,
			Faulty: map[protocol.NodeID]protocol.Node{6: nil},
		})
		if err != nil {
			t.Fatalf("NewCluster: %v", err)
		}
		defer c.Stop()
		if _, err := c.Initiate(0, "crash-v", time.Second); err != nil {
			t.Fatalf("Initiate: %v", err)
		}
		budget := time.Duration(pp.DeltaAgr()+20*pp.D) * c.Tick()
		if done := c.AwaitDecisions(0, "crash-v", budget); done != 6 {
			t.Fatalf("decided = %d/6 correct nodes", done)
		}
		res := c.Result(simtime.Duration(c.NowTicks()) + 1)
		lr := &check.LiveResult{Result: res}
		if v := lr.Battery(nil); len(v) != 0 {
			t.Fatalf("battery: %v", v)
		}
	})
}
