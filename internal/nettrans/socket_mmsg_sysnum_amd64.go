//go:build linux

package nettrans

// The stdlib syscall number table on linux/amd64 was frozen before
// sendmmsg landed; the numbers are ABI-stable, so they are spelled out
// here (x86_64 syscall table).
const (
	sysRECVMMSG = 299
	sysSENDMMSG = 307
)
