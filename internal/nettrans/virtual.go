package nettrans

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"ssbyz/internal/clock"
	"ssbyz/internal/core"
	"ssbyz/internal/eventloop"
	"ssbyz/internal/protocol"
	"ssbyz/internal/simtime"
	"ssbyz/internal/wire"
)

// This file is the virtual-time path of the Cluster: when ClusterConfig
// carries a *clock.Fake, the kernel sockets are replaced by an
// in-memory deterministic wire and every timer — protocol, chaos,
// delivery — schedules on the fake clock. Everything above the socket
// still runs for real: frames are encoded by the wire codec, carry the
// epoch incarnation and send tick, and pass back through the full
// acceptance pipeline (epoch check, authentication, the UDP deadline
// drop, receiver churn, payload decode). What virtual time buys is
// reproducibility: a seeded run's trace is byte-identical across
// executions (DESIGN.md §9).
//
// The wire's delivery schedule is built to be identical whether the
// sender coalesces frames into batch containers or ships one datagram
// per frame — that invariant is what the batched-vs-legacy differential
// tests pin, and three design points carry it:
//
//   - Per-link delay draws. Every frame's delay is a pure function of
//     (seed, from, to, per-link sequence number), drawn when the frame
//     reaches the wire. Batching defers when a frame reaches the wire
//     (flush time instead of Send time) and so reorders draws *between*
//     links, but each link's own sequence — and therefore each frame's
//     delay — is unchanged. A batch container is unpacked here at send
//     time, each inner frame drawing its own delay, exactly as if it
//     had shipped alone.
//   - Per-tick delivery buckets behind one canonical pump timer. Frames
//     land in a bucket keyed by their delivery tick; a single self-
//     rearming pump timer — registered before any node exists, rearmed
//     first thing in its own body — fires each tick's bucket sorted by
//     (to, from, seq). No timer registration order ever depends on when
//     traffic happened to be scheduled, so the fake clock's global
//     timer sequence is identical across wire modes.
//   - The half-tick offset with delay ≥ 1. The pump fires at tick
//     boundary + tick/2, and every frame is delivered at least one full
//     tick after its scheduling instant, so a bucket is always complete
//     before its pump fire and wire deliveries never tie with protocol
//     or chaos timers registered at the same boundary.

// CapturedFrame is one encoded wire datagram recorded by the virtual
// wire at send time — the record half of record/replay: the captured
// bytes can be decoded (batch containers via wire.ReadBatch) and re-fed
// through the property battery.
type CapturedFrame struct {
	From, To protocol.NodeID
	// Bytes is the full encoded datagram (a single frame, or a
	// FrameBatch container when the sender coalesced).
	Bytes []byte
}

// wireDelivery is one frame waiting in a delivery-tick bucket.
type wireDelivery struct {
	from, to protocol.NodeID
	seq      int64
	bytes    []byte
}

// capturedRec is one recorded datagram plus its canonical position:
// the send tick and the directed link's sequence number at send time.
// Node event loops send concurrently within one fake-clock cascade, so
// the append order of the record is scheduler-dependent; the key is
// not, and Frames sorts by it.
type capturedRec struct {
	at  simtime.Real
	seq int64
	f   CapturedFrame
}

// memWire is the deterministic in-memory datagram wire: sends draw a
// per-link seeded delivery delay in [DelayMin, DelayMax] ticks and wait
// in per-tick buckets for the pump.
type memWire struct {
	tick   time.Duration
	timers *eventloop.Timers
	clk    clock.Clock
	epoch  time.Time
	n      int
	seed   uint64

	mu         sync.Mutex
	dmin, dmax simtime.Duration
	nodes      []*NetNode
	frames     []capturedRec
	// linkSeq[from*n+to] numbers the frames of one directed link in wire
	// order; the delay draw hashes it, so a link's delays are independent
	// of every other link's traffic (and of batching).
	linkSeq []int64
	// due buckets frames by delivery tick until the pump collects them.
	due map[simtime.Real][]wireDelivery
}

// memTransport is one node's endpoint on the wire; it satisfies the
// same transport interface as the UDP/TCP sockets.
type memTransport struct {
	w  *memWire
	id protocol.NodeID
}

func (t *memTransport) addr() string { return fmt.Sprintf("virtual:%d", t.id) }
func (t *memTransport) close()       {}

func (t *memTransport) send(to protocol.NodeID, frame []byte) {
	w := t.w
	// The caller's scratch buffer is reused on the next send; the wire
	// needs its own copy, exactly as a socket write would take one.
	cp := append([]byte(nil), frame...)
	at := simtime.Real(w.clk.Since(w.epoch) / w.tick)
	w.mu.Lock()
	defer w.mu.Unlock()
	// The link's current sequence number positions this datagram among
	// same-tick sends (a container covers [seq, seq+count) — its first
	// inner frame's draw).
	w.frames = append(w.frames, capturedRec{
		at:  at,
		seq: w.linkSeq[int(t.id)*w.n+int(to)],
		f:   CapturedFrame{From: t.id, To: to, Bytes: cp},
	})
	if f, n, err := wire.DecodeFrame(cp); err == nil && n == len(cp) && f.Kind == wire.FrameBatch {
		// Unpack at send time: every inner frame draws its own per-link
		// delay and travels alone, exactly as on the legacy wire. Inner
		// frame *content* is not inspected here — a chaos-corrupted inner
		// frame must still draw its delay and fail at the receiver, as it
		// would have unbatched.
		if r, rerr := wire.ReadBatch(f.Payload); rerr == nil {
			for {
				inner, ok := r.Next()
				if !ok {
					break
				}
				w.scheduleLocked(t.id, to, inner)
			}
			if r.Err() == nil {
				return
			}
		}
		// An unreadable container never leaves the coalescer in practice;
		// deliver it whole and let the receiver count the decode drop.
	}
	w.scheduleLocked(t.id, to, cp)
}

// scheduleLocked buckets one frame for delivery; w.mu must be held. The
// delay is a pure function of the link and the frame's position on it.
func (w *memWire) scheduleLocked(from, to protocol.NodeID, bytes []byte) {
	seq := w.linkSeq[int(from)*w.n+int(to)]
	w.linkSeq[int(from)*w.n+int(to)]++
	if w.nodes[to] == nil {
		return // crash-faulty slot: the datagram vanishes, as on a parked socket
	}
	delay := w.dmin
	if w.dmax > w.dmin {
		delay += simtime.Duration(mix64(w.seed, uint64(from), uint64(to), uint64(seq)) % uint64(w.dmax-w.dmin+1))
	}
	if delay < 1 {
		delay = 1 // a bucket must close strictly before its pump fire
	}
	at := simtime.Real(w.clk.Since(w.epoch)/w.tick) + simtime.Real(delay)
	w.due[at] = append(w.due[at], wireDelivery{from: from, to: to, seq: seq, bytes: bytes})
}

// pump is the wire's single delivery timer body: rearm for the next
// tick first (keeping the rearm's position in the fake clock's timer
// sequence canonical), then deliver this tick's bucket in (to, from,
// seq) order — an order independent of how the bucket was filled.
func (w *memWire) pump() {
	w.timers.AfterFunc(w.tick, w.pump)
	at := simtime.Real(w.clk.Since(w.epoch) / w.tick)
	w.mu.Lock()
	list := w.due[at]
	delete(w.due, at)
	w.mu.Unlock()
	if len(list) == 0 {
		return
	}
	sort.Slice(list, func(i, j int) bool {
		a, b := list[i], list[j]
		if a.to != b.to {
			return a.to < b.to
		}
		if a.from != b.from {
			return a.from < b.from
		}
		return a.seq < b.seq
	})
	for _, d := range list {
		w.mu.Lock()
		tgt := w.nodes[d.to]
		w.mu.Unlock()
		if tgt == nil {
			continue
		}
		f, n, err := wire.DecodeFrame(d.bytes)
		if err != nil || n != len(d.bytes) {
			tgt.decDrop.Add(1)
			continue
		}
		// The wire is point-to-point in process: the sender identity is
		// its endpoint, so authentication holds by construction (the
		// claimed-sender check still runs inside the acceptance pipeline).
		if f.Kind == wire.FrameBatch {
			from := d.from
			tgt.handleBatch(f, func(id protocol.NodeID) bool { return id == from })
			continue
		}
		tgt.handleFrame(f, f.From == d.from)
	}
}

// Frames returns a copy of every wire datagram the virtual wire carried
// so far, in canonical (send tick, from, to, link sequence) order
// (empty on the wall-clock path). The canonical order — not raw append
// order — is what makes the record byte-identical run to run: within
// one fake-clock cascade several node event loops send concurrently,
// so append order is scheduler noise, while the key is a pure function
// of the seeded schedule. The record/replay golden tests pin exactly
// that.
func (c *Cluster) Frames() []CapturedFrame {
	if c.wire == nil {
		return nil
	}
	c.wire.mu.Lock()
	recs := make([]capturedRec, len(c.wire.frames))
	copy(recs, c.wire.frames)
	c.wire.mu.Unlock()
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.f.From != b.f.From {
			return a.f.From < b.f.From
		}
		if a.f.To != b.f.To {
			return a.f.To < b.f.To
		}
		return a.seq < b.seq
	})
	out := make([]CapturedFrame, len(recs))
	for i, r := range recs {
		out[i] = r.f
	}
	return out
}

// newVirtualCluster is NewCluster on the virtual-time path.
func newVirtualCluster(cfg ClusterConfig, fake *clock.Fake, absent map[protocol.NodeID]bool) (*Cluster, error) {
	n := cfg.Params.N
	if cfg.DelayMax == 0 {
		cfg.DelayMax = cfg.Params.D / 2
	}
	if cfg.DelayMin == 0 {
		cfg.DelayMin = cfg.Params.D / 4
	}
	if cfg.DelayMin < 0 || cfg.DelayMin > cfg.DelayMax || cfg.DelayMax > cfg.Params.D/2 {
		// Max D/2: the chaos layer may add up to D/2 of scripted jitter
		// before the send, and the two together must stay within the
		// model's d so the deadline drop never fires spuriously.
		return nil, fmt.Errorf("nettrans: virtual delay range must satisfy 0 ≤ min ≤ max ≤ D/2")
	}
	peers := make([]string, n)
	for i := range peers {
		peers[i] = fmt.Sprintf("virtual:%d", i)
	}
	c := &Cluster{
		cfg:          cfg,
		clk:          fake,
		fake:         fake,
		epoch:        fake.Now(),
		rec:          protocol.NewRecorder(),
		peers:        peers,
		nodes:        make([]*NetNode, n),
		parked:       make(map[protocol.NodeID]*Socket),
		incarnations: make([]uint64, n),
	}
	c.wire = &memWire{
		tick:    cfg.Tick,
		timers:  eventloop.NewTimersOn(fake),
		clk:     fake,
		epoch:   c.epoch,
		n:       n,
		seed:    uint64(cfg.Seed),
		dmin:    cfg.DelayMin,
		dmax:    cfg.DelayMax,
		nodes:   make([]*NetNode, n),
		linkSeq: make([]int64, n*n),
		due:     make(map[simtime.Real][]wireDelivery),
	}
	// The pump is the first timer the fake clock ever sees: its self-
	// rearming chain owns the half-tick delivery offsets from before any
	// node boots, keeping the clock's timer sequence — and with it every
	// tie-break — independent of traffic and of wire mode.
	c.wire.timers.AfterFunc(cfg.Tick/2, c.wire.pump)
	for i := 0; i < n; i++ {
		id := protocol.NodeID(i)
		machine, isFaulty := cfg.Faulty[id]
		if (isFaulty && machine == nil) || absent[id] {
			continue // crash-faulty or not-yet-booted: the wire drops frames addressed to it
		}
		if !isFaulty {
			if cfg.NewNode != nil {
				machine = cfg.NewNode()
			} else {
				machine = core.NewNode()
			}
			c.correct = append(c.correct, id)
		}
		nn, err := startNode(c.nodeConfig(id), machine, func(nn *NetNode) (transport, error) {
			return &memTransport{w: c.wire, id: id}, nil
		})
		if err != nil {
			c.Stop()
			return nil, err
		}
		c.nodes[i] = nn
		c.wire.nodes[i] = nn
		// Serialize the boot: node i's Start (and the timers it
		// registers) fully drains before node i+1 starts, so timer
		// registration order — and with it the whole run — is
		// deterministic.
		fake.WaitIdle()
	}
	return c, nil
}
