package nettrans

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"ssbyz/internal/clock"
	"ssbyz/internal/core"
	"ssbyz/internal/eventloop"
	"ssbyz/internal/protocol"
	"ssbyz/internal/simtime"
	"ssbyz/internal/wire"
)

// This file is the virtual-time path of the Cluster: when ClusterConfig
// carries a *clock.Fake, the kernel sockets are replaced by an
// in-memory deterministic wire and every timer — protocol, chaos,
// delivery — schedules on the fake clock. Everything above the socket
// still runs for real: frames are encoded by the wire codec, carry the
// epoch incarnation and send tick, and pass back through handleFrame's
// full acceptance pipeline (epoch check, authentication, the UDP
// deadline drop, receiver churn, payload decode). What virtual time
// buys is reproducibility: the fake fires timers one at a time in
// (deadline, seq) order and waits for each cascade of mailbox events to
// drain before the next, so a seeded run's trace is byte-identical
// across executions (DESIGN.md §9).

// CapturedFrame is one encoded wire frame recorded by the virtual wire
// at send time — the record half of record/replay: the captured bytes
// can be decoded and re-fed through the property battery.
type CapturedFrame struct {
	From, To protocol.NodeID
	// Bytes is the full encoded frame (envelope + payload).
	Bytes []byte
}

// memWire is the deterministic in-memory datagram wire: sends draw a
// seeded delivery delay in [DelayMin, DelayMax] ticks and ride a fake-
// clock timer to the receiver's acceptance pipeline.
type memWire struct {
	tick   time.Duration
	timers *eventloop.Timers

	mu         sync.Mutex
	rng        *rand.Rand
	dmin, dmax simtime.Duration
	nodes      []*NetNode
	frames     []CapturedFrame
}

// memTransport is one node's endpoint on the wire; it satisfies the
// same transport interface as the UDP/TCP sockets.
type memTransport struct {
	w  *memWire
	id protocol.NodeID
}

func (t *memTransport) addr() string { return fmt.Sprintf("virtual:%d", t.id) }
func (t *memTransport) close()       {}

func (t *memTransport) send(to protocol.NodeID, frame []byte) {
	w := t.w
	// The caller's scratch buffer is reused on the next send; the wire
	// needs its own copy, exactly as a socket write would take one.
	cp := append([]byte(nil), frame...)
	w.mu.Lock()
	w.frames = append(w.frames, CapturedFrame{From: t.id, To: to, Bytes: cp})
	delay := w.dmin
	if w.dmax > w.dmin {
		delay += simtime.Duration(w.rng.Int63n(int64(w.dmax-w.dmin) + 1))
	}
	tgt := w.nodes[to]
	w.mu.Unlock()
	if tgt == nil {
		return // crash-faulty slot: the datagram vanishes, as on a parked socket
	}
	w.timers.AfterFunc(time.Duration(delay)*w.tick, func() {
		f, n, err := wire.DecodeFrame(cp)
		if err != nil || n != len(cp) {
			tgt.decDrop.Add(1)
			return
		}
		// The wire is point-to-point in process: the sender identity is
		// its endpoint, so authentication holds by construction (the
		// claimed-sender check still runs inside handleFrame's pipeline).
		tgt.handleFrame(f, f.From == t.id)
	})
}

// Frames returns a copy of every wire frame the virtual wire carried so
// far, in send order (empty on the wall-clock path). With a fixed seed
// the sequence is byte-identical run to run — the record/replay golden
// tests pin exactly that.
func (c *Cluster) Frames() []CapturedFrame {
	if c.wire == nil {
		return nil
	}
	c.wire.mu.Lock()
	defer c.wire.mu.Unlock()
	out := make([]CapturedFrame, len(c.wire.frames))
	copy(out, c.wire.frames)
	return out
}

// newVirtualCluster is NewCluster on the virtual-time path.
func newVirtualCluster(cfg ClusterConfig, fake *clock.Fake) (*Cluster, error) {
	n := cfg.Params.N
	if cfg.DelayMax == 0 {
		cfg.DelayMax = cfg.Params.D / 2
	}
	if cfg.DelayMin == 0 {
		cfg.DelayMin = cfg.Params.D / 4
	}
	if cfg.DelayMin < 0 || cfg.DelayMin > cfg.DelayMax || cfg.DelayMax > cfg.Params.D/2 {
		// Max D/2: the chaos layer may add up to D/2 of scripted jitter
		// before the send, and the two together must stay within the
		// model's d so the deadline drop never fires spuriously.
		return nil, fmt.Errorf("nettrans: virtual delay range must satisfy 0 ≤ min ≤ max ≤ D/2")
	}
	peers := make([]string, n)
	for i := range peers {
		peers[i] = fmt.Sprintf("virtual:%d", i)
	}
	c := &Cluster{
		cfg:   cfg,
		clk:   fake,
		fake:  fake,
		epoch: fake.Now(),
		rec:   protocol.NewRecorder(),
		nodes: make([]*NetNode, n),
	}
	c.wire = &memWire{
		tick:   cfg.Tick,
		timers: eventloop.NewTimersOn(fake),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		dmin:   cfg.DelayMin,
		dmax:   cfg.DelayMax,
		nodes:  make([]*NetNode, n),
	}
	for i := 0; i < n; i++ {
		id := protocol.NodeID(i)
		machine, isFaulty := cfg.Faulty[id]
		if isFaulty && machine == nil {
			continue // crash-faulty: the wire drops frames addressed to it
		}
		if !isFaulty {
			if cfg.NewNode != nil {
				machine = cfg.NewNode()
			} else {
				machine = core.NewNode()
			}
			c.correct = append(c.correct, id)
		}
		nn, err := startNode(NodeConfig{
			ID:         id,
			Params:     cfg.Params,
			Tick:       cfg.Tick,
			Transport:  cfg.Transport,
			Peers:      peers,
			Epoch:      c.epoch,
			Rec:        c.rec,
			Conditions: cfg.Conditions,
			Clock:      fake,
		}, machine, func(nn *NetNode) (transport, error) {
			return &memTransport{w: c.wire, id: id}, nil
		})
		if err != nil {
			c.Stop()
			return nil, err
		}
		c.nodes[i] = nn
		c.wire.nodes[i] = nn
		// Serialize the boot: node i's Start (and the timers it
		// registers) fully drains before node i+1 starts, so timer
		// registration order — and with it the whole run — is
		// deterministic.
		fake.WaitIdle()
	}
	return c, nil
}
