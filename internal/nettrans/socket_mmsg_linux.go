//go:build linux && (amd64 || arm64)

package nettrans

import (
	"net"
	"net/netip"
	"syscall"
	"unsafe"

	"ssbyz/internal/protocol"
)

// Batched UDP syscalls via sendmmsg/recvmmsg, straight off the stdlib
// syscall package (no x/net dependency): one kernel crossing moves a
// whole coalescer flush out, or a whole burst of datagrams in. The
// sockets stay in the runtime's netpoller — the syscalls are issued
// through RawConn Read/Write callbacks, so EAGAIN parks the goroutine
// on the poller like any other socket op instead of spinning.
//
// The path is gated to IPv4 sockets with all-IPv4 peers (every manifest
// this repo produces is loopback IPv4); anything else falls back to the
// portable WriteToUDPAddrPort/ReadFromUDPAddrPort loop in socket.go,
// which is behaviourally identical. Only little-endian platforms are
// tagged in, so the network-byte-order port swaps below are fixed.

const mmsgEnabled = true

// rawAddr is one peer's precomputed kernel sockaddr.
type rawAddr struct {
	sa syscall.RawSockaddrInet4
}

// mmsghdr mirrors struct mmsghdr: a msghdr plus the kernel-filled
// per-datagram byte count, padded to the struct's 8-byte alignment.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

// sendChunk / recvBatch size the syscall vectors. A coalescer flush is
// at most n-1 datagrams, so 16 covers the common cluster sizes in one
// syscall; the receive batch is larger because bursts aggregate across
// senders.
const (
	sendChunk = 16
	recvBatch = 32
)

// initMMsg decides whether the fast path applies and precomputes the
// peer sockaddrs.
func (t *udpTransport) initMMsg() {
	la, ok := t.conn.LocalAddr().(*net.UDPAddr)
	if !ok || la.IP.To4() == nil {
		return // AF_INET6 socket: sockaddr_in names would be rejected
	}
	t.rawPeers = make([]rawAddr, len(t.peers))
	for i, ap := range t.peers {
		if !ap.Addr().Is4() {
			return // mixed family: stay on the portable path
		}
		var sa syscall.RawSockaddrInet4
		sa.Family = syscall.AF_INET
		sa.Addr = ap.Addr().As4()
		p := ap.Port()
		sa.Port = uint16(p>>8) | uint16(p&0xff)<<8 // host → network byte order
		t.rawPeers[i].sa = sa
	}
	t.mmsgOK = true
}

// sendMMsg transmits one datagram per destination with as few sendmmsg
// calls as possible. Fire-and-forget like send: a refused or failed
// datagram is skipped, not retried — datagram loss is in the model.
func (t *udpTransport) sendMMsg(dsts []protocol.NodeID, frames [][]byte) {
	rc, err := t.conn.SyscallConn()
	if err != nil {
		for i, to := range dsts {
			t.send(to, frames[i])
		}
		return
	}
	var (
		hdrs [sendChunk]mmsghdr
		iovs [sendChunk]syscall.Iovec
	)
	for off := 0; off < len(dsts); off += sendChunk {
		m := len(dsts) - off
		if m > sendChunk {
			m = sendChunk
		}
		for i := 0; i < m; i++ {
			fr := frames[off+i]
			iovs[i].Base = &fr[0]
			iovs[i].Len = uint64(len(fr))
			sa := &t.rawPeers[dsts[off+i]].sa
			hdrs[i] = mmsghdr{}
			hdrs[i].hdr.Name = (*byte)(unsafe.Pointer(sa))
			hdrs[i].hdr.Namelen = uint32(unsafe.Sizeof(*sa))
			hdrs[i].hdr.Iov = &iovs[i]
			hdrs[i].hdr.Iovlen = 1
		}
		sent := 0
		for sent < m {
			var n uintptr
			var errno syscall.Errno
			werr := rc.Write(func(fd uintptr) bool {
				n, _, errno = syscall.Syscall6(sysSENDMMSG, fd,
					uintptr(unsafe.Pointer(&hdrs[sent])), uintptr(m-sent), 0, 0, 0)
				return errno != syscall.EAGAIN
			})
			if werr != nil {
				return // socket closed
			}
			switch {
			case errno == syscall.EINTR:
				// retry
			case errno != 0:
				sent++ // the head datagram was refused (async ICMP etc.): drop it
			default:
				sent += int(n)
			}
		}
	}
}

// recvLoopMMsg is the batched receive loop: it replaces the portable
// loop entirely when the fast path applies (returning true), draining
// up to recvBatch datagrams per syscall into pooled buffers and
// dispatching each to its ingest shard.
func (t *udpTransport) recvLoopMMsg() bool {
	if !t.mmsgOK {
		return false
	}
	rc, err := t.conn.SyscallConn()
	if err != nil {
		return false
	}
	var (
		hdrs  [recvBatch]mmsghdr
		iovs  [recvBatch]syscall.Iovec
		names [recvBatch]syscall.RawSockaddrInet6
		bufs  [recvBatch]*[]byte
	)
	for {
		for i := 0; i < recvBatch; i++ {
			if bufs[i] == nil {
				bufs[i] = t.getBuf()
			}
			b := *bufs[i]
			iovs[i].Base = &b[0]
			iovs[i].Len = uint64(len(b))
			hdrs[i] = mmsghdr{}
			hdrs[i].hdr.Name = (*byte)(unsafe.Pointer(&names[i]))
			hdrs[i].hdr.Namelen = uint32(unsafe.Sizeof(names[i]))
			hdrs[i].hdr.Iov = &iovs[i]
			hdrs[i].hdr.Iovlen = 1
		}
		var n uintptr
		var errno syscall.Errno
		rerr := rc.Read(func(fd uintptr) bool {
			n, _, errno = syscall.Syscall6(sysRECVMMSG, fd,
				uintptr(unsafe.Pointer(&hdrs[0])), recvBatch, 0, 0, 0)
			return errno != syscall.EAGAIN
		})
		if rerr != nil {
			return true // socket closed; the loop ran to completion
		}
		if errno != 0 {
			if errno == syscall.EINTR {
				continue
			}
			return true // unexpected kernel error: treat like a closed socket
		}
		for i := 0; i < int(n); i++ {
			src, ok := sockaddrToAddrPort(&names[i])
			if !ok {
				continue
			}
			it := ingestItem{buf: bufs[i], n: int(hdrs[i].n), src: src}
			bufs[i] = nil // ownership moved to the shard worker
			t.dispatch(it)
		}
	}
}

// sockaddrToAddrPort converts a kernel-filled source sockaddr (the
// buffer is inet6-sized; the kernel writes whichever family the socket
// speaks) back to a netip.AddrPort, unmapped for comparison against the
// manifest addresses.
func sockaddrToAddrPort(sa *syscall.RawSockaddrInet6) (netip.AddrPort, bool) {
	switch sa.Family {
	case syscall.AF_INET:
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		port := sa4.Port>>8 | sa4.Port<<8 // network → host byte order
		return netip.AddrPortFrom(netip.AddrFrom4(sa4.Addr), port), true
	case syscall.AF_INET6:
		port := sa.Port>>8 | sa.Port<<8
		return netip.AddrPortFrom(netip.AddrFrom16(sa.Addr).Unmap(), port), true
	}
	return netip.AddrPort{}, false
}
