package nettrans

import (
	"testing"
	"time"

	"ssbyz/internal/clock"
	"ssbyz/internal/core"
	"ssbyz/internal/protocol"
	"ssbyz/internal/simnet"
	"ssbyz/internal/simtime"
	"ssbyz/internal/wire"
)

// This file is the coalesced-wire battery: the FrameBatch container and
// the send-side coalescer must change only HOW frames cross the wire,
// never what any node observes. The differential tests pin the batched
// pipeline to the legacy datagram-per-frame one byte for byte on the
// deterministic virtual wire; the white-box tests pin the container's
// receive-side semantics (a corrupt inner frame costs exactly itself).

// batchFor wraps the given inner frames (already encoded) into one
// FrameBatch container datagram from the given sender.
func batchFor(nn *NetNode, from protocol.NodeID, inner ...[]byte) []byte {
	var buf []byte
	var ends []int
	for _, f := range inner {
		buf = append(buf, f...)
		ends = append(ends, len(buf))
	}
	return wire.AppendBatch(nil, from, nn.epochID, int64(nn.nowTicks()), buf, ends)
}

// TestBatchDeliversAllInnerFrames pins the happy path of the container:
// one datagram, three admitted messages, one Received count each.
func TestBatchDeliversAllInnerFrames(t *testing.T) {
	nn, stub, s1 := receiverHarness(t)
	now := int64(nn.nowTicks())
	inner := [][]byte{}
	for k := 1; k <= 3; k++ {
		payload := wire.AppendMessage(nil, protocol.Message{Kind: protocol.Echo, G: 0, M: "x", K: k})
		inner = append(inner, wire.AppendFrame(nil, wire.Frame{
			Kind: wire.FrameMessage, From: 1, Epoch: nn.epochID, Sent: now, Payload: payload,
		}))
	}
	inject(t, nn, s1, batchFor(nn, 1, inner...))
	await(t, "batch delivery", func() bool { return stub.count() == 3 })
	if s := nn.Stats(); s.Received != 3 || s.DecodeDrops != 0 {
		t.Errorf("stats: %+v", s)
	}
}

// TestBatchCorruptInnerSparesMates is the container's blast-radius
// contract: a corrupt inner frame costs exactly one decode drop — its
// batch-mates in the same datagram are admitted untouched.
func TestBatchCorruptInnerSparesMates(t *testing.T) {
	nn, stub, s1 := receiverHarness(t)
	now := int64(nn.nowTicks())
	mk := func(k int) []byte {
		payload := wire.AppendMessage(nil, protocol.Message{Kind: protocol.Echo, G: 0, M: "x", K: k})
		return wire.AppendFrame(nil, wire.Frame{
			Kind: wire.FrameMessage, From: 1, Epoch: nn.epochID, Sent: now, Payload: payload,
		})
	}
	bad := mk(2)
	bad[0] ^= 0xff // break the magic: the inner frame no longer decodes
	inject(t, nn, s1, batchFor(nn, 1, mk(1), bad, mk(3)))
	await(t, "mates delivered", func() bool { return stub.count() == 2 })
	if s := nn.Stats(); s.DecodeDrops != 1 || s.Received != 2 {
		t.Errorf("stats after corrupt inner frame: %+v", s)
	}
}

// TestBatchBrokenInnerFramingAdmitsHead pins the container-framing error
// path: a batch whose outer envelope is valid but whose SECOND inner
// length prefix overruns the payload must admit the intact head frame,
// count exactly one decode drop for the broken tail, and never crash.
// A datagram truncated mid-envelope, by contrast, is undecodable as a
// whole: one decode drop, zero deliveries.
func TestBatchBrokenInnerFramingAdmitsHead(t *testing.T) {
	nn, stub, s1 := receiverHarness(t)
	now := int64(nn.nowTicks())
	payload := wire.AppendMessage(nil, protocol.Message{Kind: protocol.Echo, G: 0, M: "x", K: 1})
	inner := wire.AppendFrame(nil, wire.Frame{
		Kind: wire.FrameMessage, From: 1, Epoch: nn.epochID, Sent: now, Payload: payload,
	})
	if len(inner) >= 0x80 {
		t.Fatalf("inner frame unexpectedly large: %d", len(inner))
	}
	// COUNT=2, LEN(head), head bytes, then a length prefix declaring 100
	// bytes where none follow: wire.BatchReader yields the head and stops
	// with ErrTruncated.
	bp := append([]byte{2, byte(len(inner))}, inner...)
	bp = append(bp, 100)
	b := wire.AppendFrame(nil, wire.Frame{
		Kind: wire.FrameBatch, From: 1, Epoch: nn.epochID, Sent: now, Payload: bp,
	})
	inject(t, nn, s1, b)
	await(t, "head admitted", func() bool { return stub.count() == 1 })
	if s := nn.Stats(); s.DecodeDrops != 1 || s.Received != 1 {
		t.Errorf("stats after broken inner framing: %+v", s)
	}
	// Tail-truncating the whole datagram breaks the OUTER envelope LEN:
	// the datagram is one decode drop and nothing inside it is seen.
	whole := batchFor(nn, 1, inner, inner)
	inject(t, nn, s1, whole[:len(whole)-3])
	await(t, "outer drop", func() bool { return nn.Stats().DecodeDrops == 2 })
	if stub.count() != 1 {
		t.Errorf("deliveries = %d, want 1 (truncated datagram delivers nothing)", stub.count())
	}
}

// batchDiffConds is the attack schedule of the wire differential: byte
// corruption on the faulty node's NIC plus duplication on every link —
// the two classes that stress the coalescer hardest (corrupt inner
// frames riding containers, chaos copies multiplying pending frames).
func batchDiffConds() []simnet.Condition {
	return []simnet.Condition{
		{Kind: simnet.CondCorrupt, From: 0, Until: attackWindow, Nodes: []protocol.NodeID{1}},
		{Kind: simnet.CondDuplicate, From: 0, Until: attackWindow, Copies: 2},
	}
}

// runWireModeCell runs one virtual agreement with the given wire mode
// and returns everything observable: the cluster's stats, batch stats,
// and the full canonical trace.
func runWireModeCell(t *testing.T, legacy bool, seed int64) (Stats, BatchStats, []protocol.TraceEvent) {
	t.Helper()
	pp := protocol.DefaultParams(4)
	pp.D = 50
	c, err := NewCluster(ClusterConfig{
		Params: pp, Tick: time.Millisecond,
		Clock: clock.NewFake(time.Time{}), Seed: seed,
		Conditions:             batchDiffConds(),
		Faulty:                 map[protocol.NodeID]protocol.Node{1: core.NewNode()},
		LegacyDatagramPerFrame: legacy,
	})
	if err != nil {
		t.Fatalf("NewCluster(legacy=%v): %v", legacy, err)
	}
	t.Cleanup(c.Stop)
	budget := time.Duration(pp.DeltaAgr()+20*pp.D) * c.Tick()
	if _, err := c.Initiate(0, "wire-diff", time.Second); err != nil {
		t.Fatalf("initiate(legacy=%v): %v", legacy, err)
	}
	if done := c.AwaitDecisions(0, "wire-diff", budget); done != len(c.Correct()) {
		t.Fatalf("legacy=%v: decided %d/%d (stats %+v)", legacy, done, len(c.Correct()), c.Stats())
	}
	flushInFlight(c)
	res := c.Result(simtime.Duration(c.NowTicks()) + 1)
	return c.Stats(), c.BatchStats(), res.Rec.Events()
}

// TestBatchedVsLegacyWireVirtualIdentical is the wire differential at
// its strongest: the same seeded virtual cluster under an active attack
// schedule, run once coalesced and once datagram-per-frame, must produce
// the identical full trace — every event, instant for instant — and the
// identical 15-counter Stats vector, while BatchStats proves the two
// runs really took different wire paths.
func TestBatchedVsLegacyWireVirtualIdentical(t *testing.T) {
	for seed := int64(40); seed < 43; seed++ {
		sB, bB, evB := runWireModeCell(t, false, seed)
		sL, bL, evL := runWireModeCell(t, true, seed)
		if bB.BatchesSent == 0 || bB.BatchedFrames == 0 {
			t.Fatalf("seed %d: batched run coalesced nothing: %+v", seed, bB)
		}
		if bL.BatchesSent != 0 || bL.BatchedFrames != 0 {
			t.Fatalf("seed %d: legacy run sent containers: %+v", seed, bL)
		}
		if sB != sL {
			t.Fatalf("seed %d: stats differ:\nbatched: %+v\nlegacy:  %+v", seed, sB, sL)
		}
		if len(evB) != len(evL) {
			t.Fatalf("seed %d: %d trace events (batched) != %d (legacy)", seed, len(evB), len(evL))
		}
		for i := range evB {
			if evB[i] != evL[i] {
				t.Fatalf("seed %d: trace event %d differs:\nbatched: %+v\nlegacy:  %+v", seed, i, evB[i], evL[i])
			}
		}
	}
}

// TestCapturedBatchContainersExpand pins the record half of
// record/replay against the container format: every FrameBatch datagram
// the virtual wire captured must expand through wire.ReadBatch into
// decodable inner frames, and the expansion must account for exactly
// the frames the senders' coalescers reported packing. The duplicate
// condition guarantees multi-frame bursts (chaos copies join the same
// flush), so a clean small cluster that happens never to coalesce
// cannot vacuously pass.
func TestCapturedBatchContainersExpand(t *testing.T) {
	pp := protocol.DefaultParams(4)
	pp.D = 50
	c, err := NewCluster(ClusterConfig{
		Params: pp, Tick: time.Millisecond,
		Clock: clock.NewFake(time.Time{}), Seed: 7,
		Conditions: []simnet.Condition{
			{Kind: simnet.CondDuplicate, From: 0, Until: attackWindow, Copies: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	budget := time.Duration(pp.DeltaAgr()+20*pp.D) * c.Tick()
	if _, err := c.Initiate(0, "expand", time.Second); err != nil {
		t.Fatal(err)
	}
	if done := c.AwaitDecisions(0, "expand", budget); done != pp.N {
		t.Fatalf("decided %d/%d", done, pp.N)
	}
	containers, innerTotal := 0, int64(0)
	for _, cf := range c.Frames() {
		f, _, err := wire.DecodeFrame(cf.Bytes)
		if err != nil {
			t.Fatalf("captured datagram does not decode: %v", err)
		}
		if f.Kind != wire.FrameBatch {
			continue
		}
		containers++
		br, err := wire.ReadBatch(f.Payload)
		if err != nil {
			t.Fatalf("captured container does not open: %v", err)
		}
		for {
			raw, ok := br.Next()
			if !ok {
				break
			}
			if _, _, err := wire.DecodeFrame(raw); err != nil {
				t.Fatalf("inner frame does not decode: %v", err)
			}
			innerTotal++
		}
		if err := br.Err(); err != nil {
			t.Fatalf("container iteration: %v", err)
		}
	}
	bs := c.BatchStats()
	if containers == 0 || int64(containers) != bs.BatchesSent {
		t.Fatalf("captured %d containers, coalescers report %d", containers, bs.BatchesSent)
	}
	if innerTotal != bs.BatchedFrames {
		t.Fatalf("captured containers hold %d inner frames, coalescers report %d", innerTotal, bs.BatchedFrames)
	}
}

// TestLegacyWireFlagLiveCluster pins the off-switch on the wall-clock
// path: a real loopback UDP cluster with coalescing disabled completes
// its agreement with zero containers on the wire.
func TestLegacyWireFlagLiveCluster(t *testing.T) {
	pp := liveParams(4)
	c, err := NewCluster(ClusterConfig{
		Params: pp, Transport: TransportUDP, LegacyDatagramPerFrame: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	t0 := initiateTick(t, c, 0, "legacy-live")
	if done := c.AwaitDecisions(0, "legacy-live", 10*time.Second); done != pp.N {
		t.Fatalf("decided %d/%d (stats %+v)", done, pp.N, c.Stats())
	}
	_ = t0
	if bs := c.BatchStats(); bs.BatchesSent != 0 || bs.BatchedFrames != 0 {
		t.Fatalf("legacy cluster sent containers: %+v", bs)
	}
}
