package nettrans

import (
	"fmt"
	"net"
	"sort"

	"ssbyz/internal/core"
	"ssbyz/internal/protocol"
)

// This file is the cluster's live-membership surface: the operations the
// orchestrator (cmd/ssbyz-cluster, internal/ops) composes into
// boot→scale→roll→drain campaigns. The paper's self-stabilization claim
// is what makes them safe to offer at all — a stopped-and-replaced node
// is indistinguishable from a node recovering from a transient fault, so
// the protocol re-converges within Δstb = 2Δreset without any handshake.
// What the membership layer must add on its own is replay protection: a
// rolled node's new life must not accept (or be impersonated by) frames
// from its previous life, which is the incarnation half of the wire
// epoch id (NodeConfig.Incarnation, NetNode.BumpPeerEpoch).

// StartNode boots the correct-node slot id, which must currently be down
// — listed in ClusterConfig.Absent, or stopped earlier via StopNode. On
// the wall-clock path it reuses the slot's parked socket (still bound
// from cluster construction) or re-binds the slot's original address; on
// the virtual path it registers a fresh endpoint on the in-memory wire.
// The node boots at the cluster's current incarnation table, so a
// StartNode that follows a RollNode comes up in the new epoch.
func (c *Cluster) StartNode(id protocol.NodeID) error {
	c.mu.Lock()
	if id < 0 || int(id) >= len(c.nodes) {
		c.mu.Unlock()
		return fmt.Errorf("nettrans: start of node %d outside [0,%d)", id, len(c.nodes))
	}
	if c.nodes[id] != nil {
		c.mu.Unlock()
		return fmt.Errorf("nettrans: node %d is already running", id)
	}
	if _, isFaulty := c.cfg.Faulty[id]; isFaulty {
		c.mu.Unlock()
		return fmt.Errorf("nettrans: node %d is a faulty slot and cannot be started", id)
	}
	machine := c.newMachineLocked()
	cfgN := c.nodeConfig(id)
	sock := c.parked[id]
	delete(c.parked, id)
	if !containsID(c.correct, id) {
		c.correct = append(c.correct, id)
		sort.Slice(c.correct, func(i, j int) bool { return c.correct[i] < c.correct[j] })
	}
	c.mu.Unlock()

	var nn *NetNode
	var err error
	if c.wire != nil {
		nn, err = startNode(cfgN, machine, func(nn *NetNode) (transport, error) {
			return &memTransport{w: c.wire, id: id}, nil
		})
	} else {
		if sock == nil {
			// The slot's previous life closed its socket on Stop; the
			// address is part of the peer table, so rebind exactly it.
			sock, err = ListenSocket(c.cfg.Transport, c.peers[id])
			if err != nil {
				return fmt.Errorf("nettrans: rebind node %d at %s: %w", id, c.peers[id], err)
			}
		}
		nn, err = StartWith(cfgN, sock, machine)
	}
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.nodes[id] = nn
	c.mu.Unlock()
	if c.wire != nil {
		c.wire.mu.Lock()
		c.wire.nodes[id] = nn
		c.wire.mu.Unlock()
		// Serialize the boot exactly as cluster construction does: the
		// node's Start and the timers it registers drain fully before the
		// driver advances time again, keeping the run deterministic.
		c.fake.WaitIdle()
	}
	return nil
}

// StopNode takes the running node id off the air: its endpoint leaves
// the wire (virtual) or its socket closes (wall), in-flight frames to it
// vanish, and the model reads the silence as a crash fault — so at most
// f slots may be down at once, which is the orchestrator's contract to
// keep, not this method's. The slot can be rebooted with StartNode.
func (c *Cluster) StopNode(id protocol.NodeID) error {
	c.mu.Lock()
	if id < 0 || int(id) >= len(c.nodes) || c.nodes[id] == nil {
		c.mu.Unlock()
		return fmt.Errorf("nettrans: stop of node %d, which is not running", id)
	}
	nn := c.nodes[id]
	c.nodes[id] = nil
	c.mu.Unlock()
	if c.wire != nil {
		c.wire.mu.Lock()
		c.wire.nodes[id] = nil
		c.wire.mu.Unlock()
	}
	nn.Stop()
	return nil
}

// RollNode replaces node id: stop, advance its incarnation, tell every
// running peer to expect the new epoch (old-incarnation frames then
// count as epoch_drops — the replay-rejection proof the tests pin), and
// boot the replacement. The replacement converges like any node
// recovering from a transient, i.e. within Δstb of its boot; the
// orchestrator asserts exactly that after every roll. It returns the new
// incarnation number.
func (c *Cluster) RollNode(id protocol.NodeID) (uint64, error) {
	if err := c.StopNode(id); err != nil {
		return 0, err
	}
	c.mu.Lock()
	c.incarnations[id]++
	inc := c.incarnations[id]
	c.mu.Unlock()
	if err := c.bumpRunningPeers(id, inc); err != nil {
		return 0, err
	}
	if err := c.StartNode(id); err != nil {
		return 0, err
	}
	return inc, nil
}

// BumpPeerEpoch records that slot peer is (about to be) at the given
// incarnation and propagates the expectation to every running node.
// Moving backwards is refused with ErrEpochSkew — the point of the
// incarnation id is that an old life can never be readmitted.
func (c *Cluster) BumpPeerEpoch(peer protocol.NodeID, incarnation uint64) error {
	c.mu.Lock()
	if peer < 0 || int(peer) >= len(c.incarnations) {
		c.mu.Unlock()
		return fmt.Errorf("%w: bump of node %d outside [0,%d)", ErrEpochSkew, peer, len(c.incarnations))
	}
	if incarnation < c.incarnations[peer] {
		c.mu.Unlock()
		return fmt.Errorf("%w: node %d cannot move back from incarnation %d to %d",
			ErrEpochSkew, peer, c.incarnations[peer], incarnation)
	}
	c.incarnations[peer] = incarnation
	c.mu.Unlock()
	return c.bumpRunningPeers(peer, incarnation)
}

// bumpRunningPeers pushes peer's incarnation into every running node's
// expected-epoch table.
func (c *Cluster) bumpRunningPeers(peer protocol.NodeID, incarnation uint64) error {
	c.mu.Lock()
	nodes := append([]*NetNode(nil), c.nodes...)
	c.mu.Unlock()
	for _, nn := range nodes {
		if nn == nil {
			continue
		}
		if err := nn.BumpPeerEpoch(peer, incarnation); err != nil {
			return err
		}
	}
	return nil
}

// WireEpochID returns the wire epoch id a node at the given incarnation
// stamps on its frames: the cluster epoch base plus the incarnation.
// The campaign's replay probe uses it to forge a frame from a rolled
// node's previous life.
func (c *Cluster) WireEpochID(incarnation uint64) uint64 {
	return uint64(c.epoch.UnixNano()) + incarnation
}

// Incarnations returns a snapshot of every slot's current incarnation.
func (c *Cluster) Incarnations() []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]uint64(nil), c.incarnations...)
}

// Running reports whether slot id currently runs a node.
func (c *Cluster) Running(id protocol.NodeID) bool {
	return c.node(id) != nil
}

// InjectFrame delivers one raw encoded wire datagram to node to as if
// sent by from — the campaign's replay probe uses it to present a frame
// stamped with a rolled node's old incarnation and assert the receive
// pipeline rejects it (epoch_drops). On the virtual path the frame joins
// the deterministic delivery schedule like any other send; on the wall
// path it is written to to's UDP socket from an anonymous source (the
// epoch check sits before source authentication in the acceptance
// pipeline, so the probe exercises exactly the replay-rejection step).
func (c *Cluster) InjectFrame(from, to protocol.NodeID, raw []byte) error {
	if to < 0 || int(to) >= len(c.peers) {
		return fmt.Errorf("nettrans: inject to node %d outside [0,%d)", to, len(c.peers))
	}
	if c.wire != nil {
		cp := append([]byte(nil), raw...)
		c.wire.mu.Lock()
		c.wire.scheduleLocked(from, to, cp)
		c.wire.mu.Unlock()
		return nil
	}
	if c.cfg.Transport != TransportUDP {
		return fmt.Errorf("nettrans: frame injection needs the UDP transport, not %q", c.cfg.Transport)
	}
	conn, err := net.Dial("udp", c.peers[to])
	if err != nil {
		return err
	}
	defer conn.Close()
	_, err = conn.Write(raw)
	return err
}

// node returns the live NetNode at slot id, nil when down or out of
// range.
func (c *Cluster) node(id protocol.NodeID) *NetNode {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id < 0 || int(id) >= len(c.nodes) {
		return nil
	}
	return c.nodes[id]
}

// newMachineLocked builds one correct state machine; c.mu must be held.
func (c *Cluster) newMachineLocked() protocol.Node {
	if c.cfg.NewNode != nil {
		return c.cfg.NewNode()
	}
	return core.NewNode()
}

func containsID(ids []protocol.NodeID, id protocol.NodeID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}
