//go:build !race

package nettrans

const raceEnabled = false
