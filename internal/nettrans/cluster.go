package nettrans

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"ssbyz/internal/clock"
	"ssbyz/internal/core"
	"ssbyz/internal/protocol"
	"ssbyz/internal/sim"
	"ssbyz/internal/simnet"
	"ssbyz/internal/simtime"
)

// Cluster is an in-process loopback cluster: n NetNodes, each behind its
// own real socket on 127.0.0.1, sharing one trace recorder. Messages
// leave through the kernel's network stack and come back — everything
// except the physical wire is exercised: the codec, the authentication,
// the deadline drops, genuine concurrency and scheduling. The
// multi-process form of the same topology is cmd/ssbyz-node driven by a
// manifest; both are fed to the property battery through Result.
type Cluster struct {
	cfg   ClusterConfig
	clk   clock.Clock
	fake  *clock.Fake // non-nil on the virtual-time path
	wire  *memWire    // the in-memory wire of a virtual cluster
	epoch time.Time
	rec   *protocol.Recorder
	peers []string // listen addresses by id (restart needs them)

	// mu guards the membership state below: the live-membership
	// operations (StartNode/StopNode/RollNode) rewrite it while ops
	// observers (health endpoints, stats scrapes) read it from their own
	// goroutines.
	mu           sync.Mutex
	nodes        []*NetNode
	parked       map[protocol.NodeID]*Socket // bound-but-unread sockets of crash-faulty/absent slots
	correct      []protocol.NodeID
	incarnations []uint64
}

// ClusterConfig describes an in-process loopback cluster.
type ClusterConfig struct {
	// Params are the protocol constants; Params.D is in ticks.
	Params protocol.Params
	// Tick is the wall-clock tick length (default 100µs).
	Tick time.Duration
	// Transport is TransportUDP (default) or TransportTCP.
	Transport string
	// Faulty maps node ids to adversary state machines; a nil entry is a
	// crash-faulty slot (its address exists, nothing reads it). IDs not
	// present run correct nodes.
	Faulty map[protocol.NodeID]protocol.Node
	// NewNode builds each correct node's state machine (default
	// core.NewNode). The service layer installs the indexed (footnote-9)
	// factory here to multiplex concurrent agreement sessions over the
	// same sockets.
	NewNode func() protocol.Node
	// Conditions is the live chaos schedule shared by every node.
	Conditions []simnet.Condition
	// Clock is the time source (default clock.Real()). Injecting a
	// *clock.Fake switches the cluster to the virtual-time path: real
	// sockets are replaced by the deterministic in-memory wire
	// (virtual.go), nodes boot serialized, and time moves only under
	// Advance/Step — the same codec, authentication, deadline-drop, and
	// chaos code runs, reproducibly.
	Clock clock.Clock
	// Seed drives the virtual wire's delivery-delay randomness (the seed
	// is the run's only entropy, so equal seeds replay byte-identically).
	Seed int64
	// DelayMin/DelayMax bound the virtual wire's per-frame delivery
	// delay in ticks (defaults [D/4, D/2], like livenet; max D/2 so a
	// chaos jitter of up to D/2 on top never crosses the d deadline).
	DelayMin, DelayMax simtime.Duration
	// Absent lists correct slots NOT booted at cluster start: their
	// addresses exist (peers' sends have a destination) but no protocol
	// machine runs, which the model reads as a crash fault — so
	// len(Faulty) + len(Absent) must stay within f. StartNode boots an
	// absent slot later (the orchestrator's scale-up operation), after
	// which it converges like any node recovering from a transient.
	Absent []protocol.NodeID
	// LegacyDatagramPerFrame switches every node to the pre-batching
	// one-datagram-per-frame wire (see NodeConfig). The batched-vs-legacy
	// differential tests run the same campaign under both settings and
	// require byte-identical results.
	LegacyDatagramPerFrame bool
}

// NewCluster binds n loopback sockets (ephemeral ports), distributes the
// peer table, and starts every node. Callers must Stop it.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.Tick <= 0 {
		cfg.Tick = 100 * time.Microsecond
	}
	if cfg.Transport == "" {
		cfg.Transport = TransportUDP
	}
	if len(cfg.Faulty)+len(cfg.Absent) > cfg.Params.F {
		return nil, fmt.Errorf("nettrans: %d faulty + %d absent nodes exceeds f=%d",
			len(cfg.Faulty), len(cfg.Absent), cfg.Params.F)
	}
	absent := make(map[protocol.NodeID]bool, len(cfg.Absent))
	for _, id := range cfg.Absent {
		if id < 0 || int(id) >= cfg.Params.N {
			return nil, fmt.Errorf("nettrans: absent node %d outside [0,%d)", id, cfg.Params.N)
		}
		if _, faulty := cfg.Faulty[id]; faulty || absent[id] {
			return nil, fmt.Errorf("nettrans: absent node %d is duplicated or also faulty", id)
		}
		absent[id] = true
	}
	if fake, ok := cfg.Clock.(*clock.Fake); ok {
		return newVirtualCluster(cfg, fake, absent)
	}
	if cfg.Clock != nil {
		return nil, fmt.Errorf("nettrans: cluster clock must be nil (wall) or a *clock.Fake (virtual)")
	}
	n := cfg.Params.N
	socks := make([]*Socket, n)
	peers := make([]string, n)
	closeAll := func() {
		for _, s := range socks {
			if s != nil {
				s.Close()
			}
		}
	}
	for i := 0; i < n; i++ {
		s, err := ListenSocket(cfg.Transport, "127.0.0.1:0")
		if err != nil {
			closeAll()
			return nil, err
		}
		socks[i] = s
		peers[i] = s.Addr()
	}
	c := &Cluster{
		cfg:          cfg,
		clk:          clock.Real(),
		epoch:        time.Now(),
		rec:          protocol.NewRecorder(),
		peers:        peers,
		nodes:        make([]*NetNode, n),
		parked:       make(map[protocol.NodeID]*Socket),
		incarnations: make([]uint64, n),
	}
	for i := 0; i < n; i++ {
		id := protocol.NodeID(i)
		machine, isFaulty := cfg.Faulty[id]
		if (isFaulty && machine == nil) || absent[id] {
			// Crash-faulty or not-yet-booted: hold the bound socket so
			// peers' sends have a destination, deliver nothing.
			c.parked[id] = socks[i]
			continue
		}
		if !isFaulty {
			if cfg.NewNode != nil {
				machine = cfg.NewNode()
			} else {
				machine = core.NewNode()
			}
			c.correct = append(c.correct, id)
		}
		nn, err := StartWith(c.nodeConfig(id), socks[i], machine)
		if err != nil {
			c.Stop()
			closeAll()
			return nil, err
		}
		c.nodes[i] = nn
	}
	return c, nil
}

// nodeConfig derives the NodeConfig for slot id at its current
// incarnation, with the per-peer incarnation table snapshot. Callers on
// the wall path hand it to StartWith; the virtual path overrides Clock.
func (c *Cluster) nodeConfig(id protocol.NodeID) NodeConfig {
	return NodeConfig{
		ID:                     id,
		Params:                 c.cfg.Params,
		Tick:                   c.cfg.Tick,
		Transport:              c.cfg.Transport,
		Peers:                  c.peers,
		Epoch:                  c.epoch,
		Incarnation:            c.incarnations[id],
		PeerIncarnations:       append([]uint64(nil), c.incarnations...),
		Rec:                    c.rec,
		Conditions:             c.cfg.Conditions,
		Clock:                  c.cfg.Clock,
		LegacyDatagramPerFrame: c.cfg.LegacyDatagramPerFrame,
	}
}

// Params returns the protocol constants.
func (c *Cluster) Params() protocol.Params { return c.cfg.Params }

// Tick returns the wall-clock tick length.
func (c *Cluster) Tick() time.Duration { return c.cfg.Tick }

// Recorder returns the shared trace recorder.
func (c *Cluster) Recorder() *protocol.Recorder { return c.rec }

// Correct lists the ids running correct state machines (including slots
// temporarily down mid-roll — a rolled node's trace still belongs to a
// correct node), ascending. Slots booted later via StartNode join the
// list when they boot.
func (c *Cluster) Correct() []protocol.NodeID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]protocol.NodeID(nil), c.correct...)
}

// NowTicks returns ticks since the cluster epoch.
func (c *Cluster) NowTicks() simtime.Real {
	return simtime.Real(c.clk.Since(c.epoch) / c.cfg.Tick)
}

// Virtual returns the cluster's fake clock when it runs in virtual
// time, nil on the wall-clock path. Drivers use it to Advance/Step.
func (c *Cluster) Virtual() *clock.Fake { return c.fake }

// Stop tears every node down; idempotent.
func (c *Cluster) Stop() {
	if c.wire != nil {
		c.wire.timers.Stop()
	}
	c.mu.Lock()
	nodes := append([]*NetNode(nil), c.nodes...)
	for i := range c.nodes {
		c.nodes[i] = nil
	}
	parked := c.parked
	c.parked = nil
	c.mu.Unlock()
	for _, nn := range nodes {
		if nn != nil {
			nn.Stop()
		}
	}
	for _, s := range parked {
		s.Close()
	}
}

// Do executes fn inside node id's event loop (no-op for down slots).
func (c *Cluster) Do(id protocol.NodeID, fn func(protocol.Node)) {
	if nn := c.node(id); nn != nil {
		nn.Do(fn)
	}
}

// DoWait executes fn inside node id's event loop and waits for it.
func (c *Cluster) DoWait(id protocol.NodeID, fn func(protocol.Node)) {
	if nn := c.node(id); nn != nil {
		nn.DoWait(fn)
	}
}

// Stats aggregates every live node's transport counters.
func (c *Cluster) Stats() Stats {
	c.mu.Lock()
	nodes := append([]*NetNode(nil), c.nodes...)
	c.mu.Unlock()
	var total Stats
	for _, nn := range nodes {
		if nn == nil {
			continue
		}
		total.Add(nn.Stats())
	}
	return total
}

// NodeStats returns the transport counters of node id alone (zero when
// the slot is down) — the per-node scrape behind /metrics and the
// campaign's per-peer epoch-drop assertions.
func (c *Cluster) NodeStats(id protocol.NodeID) Stats {
	if nn := c.node(id); nn != nil {
		return nn.Stats()
	}
	return Stats{}
}

// BatchStats aggregates every live node's coalescer counters.
func (c *Cluster) BatchStats() BatchStats {
	c.mu.Lock()
	nodes := append([]*NetNode(nil), c.nodes...)
	c.mu.Unlock()
	var total BatchStats
	for _, nn := range nodes {
		if nn == nil {
			continue
		}
		total.Add(nn.BatchStats())
	}
	return total
}

// Initiate asks correct node g to initiate agreement on v inside its
// event loop, waits for the resulting EvInitiate trace event, and
// returns its instant — the t0 the Validity window [t0−d, t0+4d] is
// anchored at. Only an event recorded AFTER this call counts: a General
// legally re-initiating the same value (Δv apart) must not match the
// previous agreement's initiation. Errors reflect the sending-validity
// refusals (IG1–IG3), a stopped cluster, or the timeout.
func (c *Cluster) Initiate(g protocol.NodeID, v protocol.Value, timeout time.Duration) (simtime.Real, error) {
	t0, _, err := c.InitiateIn(g, 0, v, timeout)
	return t0, err
}

// InitiateIn is Initiate for a concurrent-invocation slot (footnote 9):
// node g starts agreement on v in the given slot and the returned wire
// value carries the slot namespace the agreement runs under ("s<slot>|v"
// on indexed nodes, v itself on single-session nodes, which only accept
// slot 0). t0 is the traced initiation instant, as for Initiate.
func (c *Cluster) InitiateIn(g protocol.NodeID, slot int, v protocol.Value,
	timeout time.Duration) (simtime.Real, protocol.Value, error) {
	type accepted struct {
		wire   protocol.Value
		before int
		err    error
	}
	ch := make(chan accepted, 1)
	c.DoWait(g, func(n protocol.Node) {
		switch m := n.(type) {
		case sim.SlotInitiator:
			wire := protocol.SlotValue(slot, v)
			// Count inside the event loop, before the initiation records
			// its trace event, so a legal re-initiation of the same value
			// (Δv apart) cannot match the previous agreement's event.
			before := c.countInitiates(g, wire)
			ch <- accepted{wire, before, m.InitiateAgreement(slot, v)}
		case sim.Initiator:
			if slot != 0 {
				ch <- accepted{err: fmt.Errorf("nettrans: node %d has no concurrent slots", g)}
				return
			}
			before := c.countInitiates(g, v)
			ch <- accepted{v, before, m.InitiateAgreement(v)}
		default:
			ch <- accepted{err: fmt.Errorf("nettrans: node %d cannot initiate agreements", g)}
		}
	})
	var acc accepted
	select {
	case acc = <-ch:
		if acc.err != nil {
			return 0, acc.wire, acc.err
		}
	default:
		return 0, "", fmt.Errorf("nettrans: cluster stopped")
	}
	deadline := time.Now().Add(timeout)
	for {
		if evs := c.initiates(g, acc.wire); len(evs) > acc.before {
			return evs[len(evs)-1].RT, acc.wire, nil
		}
		if time.Now().After(deadline) {
			return 0, acc.wire, fmt.Errorf("nettrans: initiation of %q by node %d was accepted but never traced", acc.wire, g)
		}
		time.Sleep(time.Millisecond)
	}
}

// initiates returns the EvInitiate events of (g, v) in arrival order.
func (c *Cluster) initiates(g protocol.NodeID, v protocol.Value) []protocol.TraceEvent {
	var out []protocol.TraceEvent
	c.rec.ForEachKind(func(ev protocol.TraceEvent) {
		if ev.Node == g && ev.M == v {
			out = append(out, ev)
		}
	}, protocol.EvInitiate)
	return out
}

func (c *Cluster) countInitiates(g protocol.NodeID, v protocol.Value) int {
	return len(c.initiates(g, v))
}

// AwaitDecisions waits until every correct node has returned a decision
// for General g with value want, or the timeout passes; it returns how
// many decided. On the wall-clock path it polls; on the virtual path it
// steps the fake clock timer by timer, so the timeout is a virtual-time
// budget (timeout/Tick ticks) and deterministic.
func (c *Cluster) AwaitDecisions(g protocol.NodeID, want protocol.Value, timeout time.Duration) int {
	needed := len(c.Correct())
	if c.fake != nil {
		horizon := simtime.Duration(c.NowTicks()) + simtime.Duration(timeout/c.cfg.Tick)
		c.StepUntil(func() bool {
			// Cheap recorder precheck first; the event-loop query
			// (countDecided) only runs once the trace says all decided.
			return c.countDecideEvents(g, want) >= needed &&
				c.countDecided(g, want) == needed
		}, horizon)
		return c.countDecided(g, want)
	}
	deadline := time.Now().Add(timeout)
	for {
		done := c.countDecided(g, want)
		if done == needed || time.Now().After(deadline) {
			return done
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// countDecided counts correct nodes that have returned a decision for
// General g with value want.
func (c *Cluster) countDecided(g protocol.NodeID, want protocol.Value) int {
	done := 0
	for _, id := range c.Correct() {
		var returned, decided bool
		var v protocol.Value
		c.DoWait(id, func(n protocol.Node) {
			if cn, ok := n.(*core.Node); ok {
				returned, decided, v = cn.Result(g)
			}
		})
		if returned && decided && v == want {
			done++
		}
	}
	return done
}

// countDecideEvents counts traced EvDecide events of correct nodes for
// (g, want) — a lock-light proxy for countDecided usable every step.
func (c *Cluster) countDecideEvents(g protocol.NodeID, want protocol.Value) int {
	correct := c.Correct()
	isCorrect := make(map[protocol.NodeID]bool, len(correct))
	for _, id := range correct {
		isCorrect[id] = true
	}
	done := 0
	c.rec.ForEachKind(func(ev protocol.TraceEvent) {
		if ev.G == g && ev.M == want && isCorrect[ev.Node] {
			done++
		}
	}, protocol.EvDecide)
	return done
}

// StepUntil drives a virtual cluster one timer at a time until pred
// holds or virtual time reaches the horizon (ticks since epoch); it
// reports whether pred held. On a wall-clock cluster it just evaluates
// pred — real time cannot be stepped.
func (c *Cluster) StepUntil(pred func() bool, horizon simtime.Duration) bool {
	if c.fake == nil {
		return pred()
	}
	for {
		if pred() {
			return true
		}
		if simtime.Duration(c.NowTicks()) >= horizon {
			return false
		}
		if !c.fake.Step() {
			// Heap empty (a stopped cluster): pred will not change again.
			return pred()
		}
	}
}

// Result packages the collected trace for the property battery, exactly
// as BuildResult does for daemon-collected traces. horizon is the run's
// wall-clock extent in ticks (Termination's proof horizon).
func (c *Cluster) Result(horizon simtime.Duration) *sim.Result {
	return BuildResult(c.cfg.Params, c.rec.Events(), c.Correct(), horizon)
}

// BuildResult shapes a live trace for the internal/check battery: events
// are sorted into chronological order (live streams interleave; the
// checkers' session logic assumes per-kind chronological order, which the
// simulator provides for free) and wrapped in the sim.Result form every
// checker consumes. Same-instant events are ordered by node, so the
// shaped trace is canonical: two runs that traced the same events in a
// different same-tick interleaving (e.g. the batched and legacy wires)
// shape to identical results. correct lists the node ids running correct
// state machines; horizon is the run's extent in ticks.
func BuildResult(pp protocol.Params, events []protocol.TraceEvent,
	correct []protocol.NodeID, horizon simtime.Duration) *sim.Result {
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].RT != events[j].RT {
			return events[i].RT < events[j].RT
		}
		return events[i].Node < events[j].Node
	})
	rec := protocol.NewRecorder()
	for _, ev := range events {
		rec.Add(ev)
	}
	ids := append([]protocol.NodeID(nil), correct...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return &sim.Result{
		Scenario: sim.Scenario{Params: pp, RunFor: horizon},
		Rec:      rec,
		Correct:  ids,
		InitErrs: make(map[int]error),
	}
}
