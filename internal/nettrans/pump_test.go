package nettrans

import (
	"testing"
	"time"

	"ssbyz/internal/protocol"
)

// Transport throughput battery: the pump floods a wall-clock loopback
// cluster through the full stack — encode, coalesce, sendmmsg, recvmmsg
// into pooled buffers, sharded decode, dedup, delivery — with NullNode
// stubbing the protocol out. TestRecvBufferPoolRace is the -race stress
// for the pooled receive buffers; the benchmark and the floor test are
// the local instruments behind the committed L1 artifact floor.

// pumpCluster boots an n-node wall-clock UDP NullNode cluster with a
// deadline window wide enough that scheduler hiccups read as loss (which
// the pump tolerates), not late-drops.
func pumpCluster(t testing.TB, n int) *Cluster {
	pp := protocol.DefaultParams(n)
	pp.D = 10000
	c, err := NewCluster(ClusterConfig{
		Params: pp, Tick: 100 * time.Microsecond, Transport: TransportUDP,
		NewNode: func() protocol.Node { return NullNode{} },
	})
	if err != nil {
		t.Fatalf("NewCluster(n=%d): %v", n, err)
	}
	t.Cleanup(c.Stop)
	return c
}

// TestRecvBufferPoolRace hammers the pooled receive path (referenced by
// the ownership comment in socket.go): recvmmsg fills pooled buffers,
// ingest shards consume and recycle them, and the race detector checks
// the handoff. Four nodes all pumping at once maximizes pool churn —
// every socket is simultaneously filling buffers and returning them.
func TestRecvBufferPoolRace(t *testing.T) {
	c := pumpCluster(t, 4)
	done := make(chan PumpResult, 4)
	for id := 0; id < 4; id++ {
		go func(id protocol.NodeID) {
			done <- c.Pump(id, 2000, 20*time.Second)
		}(protocol.NodeID(id))
	}
	var recv int64
	for i := 0; i < 4; i++ {
		r := <-done
		recv += r.Received
	}
	if recv == 0 {
		t.Fatal("four concurrent pumps delivered nothing")
	}
}

// TestTransportThroughputFloor is the local tripwire under the committed
// artifact floor: the loopback pump must clear a deliberately modest
// 10^5 msgs/sec so a hot-path regression fails fast in `go test ./...`
// without wall-clock flakiness. The real 10^6 floor is enforced on the
// committed BENCH artifact by the harness floor guard.
func TestTransportThroughputFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock throughput floor: skipped in -short")
	}
	if raceEnabled {
		t.Skip("race detector slowdown invalidates throughput floors")
	}
	c := pumpCluster(t, 16)
	c.Pump(0, 2000, 10*time.Second) // warm to steady state
	res := c.Pump(0, 20000, 30*time.Second)
	if res.Received == 0 {
		t.Fatalf("pump delivered nothing: %+v", res)
	}
	const floor = 1e5
	if rate := res.MsgsPerSec(); rate < floor {
		t.Errorf("loopback transport rate %.0f msgs/sec below %.0f floor (%+v)", rate, floor, res)
	}
	t.Logf("n=16 loopback: %.0f msgs/sec (%d/%d delivered, %v) batches=%+v",
		res.MsgsPerSec(), res.Received, res.Sent, res.Elapsed, c.BatchStats())
}

// BenchmarkTransportSendRecv measures the wire-rate hot path end to end
// on a persistent n=16 loopback cluster; the reported custom metric is
// aggregate delivered msgs/sec.
func BenchmarkTransportSendRecv(b *testing.B) {
	c := pumpCluster(b, 16)
	c.Pump(0, 2000, 10*time.Second) // warm to steady state
	b.ResetTimer()
	res := c.Pump(0, b.N, time.Minute)
	b.StopTimer()
	if res.Received == 0 {
		b.Fatalf("pump delivered nothing: %+v", res)
	}
	b.ReportMetric(res.MsgsPerSec(), "msgs/sec")
	b.ReportMetric(float64(res.Received)/float64(res.Sent), "delivered/sent")
}
