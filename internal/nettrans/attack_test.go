package nettrans

import (
	"testing"
	"time"

	"ssbyz/internal/check"
	"ssbyz/internal/clock"
	"ssbyz/internal/core"
	"ssbyz/internal/protocol"
	"ssbyz/internal/simnet"
	"ssbyz/internal/simtime"
	"ssbyz/internal/transient"
)

// This file is the per-class attack/defense battery of the byte-level
// chaos engine: for every wire-level condition kind the attack counter
// must prove the injection fired AND the corresponding receive-pipeline
// defense counter must prove the rejection fired, while the agreement
// itself stays correct (the property battery over the correct nodes).
// Everything runs on the deterministic virtual-time path, so each test
// is a hard gate, never a flaky-timing rerun.

// attackWindow covers any virtual run these tests drive.
const attackWindow = simtime.Real(1 << 20)

// startAttackCluster boots a 4-node virtual cluster (d=50 ticks) under
// the given schedule. faultyHonest, when ≥ 0, runs that node as an
// honest state machine in a FAULTY slot: the byte-level attacker sits
// on its NIC, so the battery and decision counting exclude it (attacks
// that eat its traffic are model-legal Byzantine behaviour).
func startAttackCluster(t *testing.T, conds []simnet.Condition, faultyHonest protocol.NodeID) (*Cluster, protocol.Params) {
	t.Helper()
	pp := protocol.DefaultParams(4)
	pp.D = 50
	cfg := ClusterConfig{
		Params:     pp,
		Tick:       time.Millisecond,
		Clock:      clock.NewFake(time.Time{}),
		Seed:       42,
		Conditions: conds,
	}
	if faultyHonest >= 0 {
		cfg.Faulty = map[protocol.NodeID]protocol.Node{faultyHonest: core.NewNode()}
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	t.Cleanup(c.Stop)
	return c, pp
}

// runAttackAgreement drives one agreement by General g and returns the
// initiation instant; it fails the test unless every correct node
// decides v.
func runAttackAgreement(t *testing.T, c *Cluster, g protocol.NodeID, v protocol.Value) simtime.Real {
	t.Helper()
	pp := c.Params()
	budget := time.Duration(pp.DeltaAgr()+20*pp.D) * c.Tick()
	t0, err := c.Initiate(g, v, time.Second)
	if err != nil {
		t.Fatalf("initiate g=%d: %v", g, err)
	}
	if done := c.AwaitDecisions(g, v, budget); done != len(c.Correct()) {
		t.Fatalf("decided %d/%d under attack %+v", done, len(c.Correct()), c.Stats())
	}
	return t0
}

// assertBattery runs the full live property battery over the run.
func assertBattery(t *testing.T, c *Cluster, inits []check.LiveInitiation) {
	t.Helper()
	lr := &check.LiveResult{Result: c.Result(simtime.Duration(c.NowTicks()) + 1)}
	if v := lr.Battery(inits); len(v) != 0 {
		t.Fatalf("battery under attack: %v", v)
	}
}

// TestAttackCorruptionRejected: a byte-level attacker on a faulty
// node's NIC flips one byte per outgoing frame; the codec's
// magic/version/kind checks and the message decoder's bounds reject
// the damaged frames (DecodeDrops), and the correct nodes agree
// regardless.
func TestAttackCorruptionRejected(t *testing.T) {
	c, _ := startAttackCluster(t, []simnet.Condition{
		{Kind: simnet.CondCorrupt, From: 0, Until: attackWindow, Nodes: []protocol.NodeID{1}},
	}, 1)
	t0 := runAttackAgreement(t, c, 0, "under-corruption")
	s := c.Stats()
	if s.CorruptFrames == 0 {
		t.Fatal("corruption window injected nothing")
	}
	if s.DecodeDrops == 0 {
		t.Fatalf("no decode drops despite %d corrupted frames: %+v", s.CorruptFrames, s)
	}
	assertBattery(t, c, []check.LiveInitiation{{G: 0, V: "under-corruption", T0: t0}})
}

// TestAttackCrossEpochReplayRejected: replayed frames claiming another
// cluster incarnation die on the epoch check (EpochDrops) — the
// incarnation-id envelope doing its job.
func TestAttackCrossEpochReplayRejected(t *testing.T) {
	c, _ := startAttackCluster(t, []simnet.Condition{
		{Kind: simnet.CondReplay, From: 0, Until: attackWindow, Nodes: []protocol.NodeID{1}, CrossEpoch: true},
	}, 1)
	t0 := runAttackAgreement(t, c, 0, "under-xepoch")
	s := c.Stats()
	if s.ReplayFrames == 0 {
		t.Fatal("cross-epoch replay window injected nothing")
	}
	if s.EpochDrops == 0 {
		t.Fatalf("no epoch drops despite %d replayed frames: %+v", s.ReplayFrames, s)
	}
	assertBattery(t, c, []check.LiveInitiation{{G: 0, V: "under-xepoch", T0: t0}})
}

// TestAttackStaleReplayRejected: replays of frames older than d keep
// their ORIGINAL send tick, so the bounded-delay deadline treats them
// as late frames (LateDrops) — the model's "within d or not at all"
// enforced against recorded traffic. Two back-to-back agreements: the
// first fills the attacker's tape, the second sends long after those
// captures went stale.
func TestAttackStaleReplayRejected(t *testing.T) {
	c, _ := startAttackCluster(t, []simnet.Condition{
		{Kind: simnet.CondReplay, From: 0, Until: attackWindow, Nodes: []protocol.NodeID{1}},
	}, 1)
	t0 := runAttackAgreement(t, c, 0, "under-replay")
	t1 := runAttackAgreement(t, c, 2, "under-replay-2")
	flushInFlight(c)
	s := c.Stats()
	if s.ReplayFrames == 0 {
		t.Fatal("stale replay window injected nothing")
	}
	if s.LateDrops == 0 {
		t.Fatalf("no deadline drops despite %d stale replays: %+v", s.ReplayFrames, s)
	}
	assertBattery(t, c, []check.LiveInitiation{
		{G: 0, V: "under-replay", T0: t0},
		{G: 2, V: "under-replay-2", T0: t1},
	})
}

// flushInFlight steps virtual time far enough past the last event that
// every held or delayed frame has arrived (and been judged by the
// receive pipeline) before counters are read.
func flushInFlight(c *Cluster) {
	pp := c.Params()
	c.StepUntil(func() bool { return false },
		simtime.Duration(c.NowTicks())+simtime.Duration(8*pp.D))
}

// TestAttackForgedSenderRejected: frames claiming another node's
// identity fail source authentication (AuthDrops) — the paper's
// sender-identification assumption re-established from bytes.
func TestAttackForgedSenderRejected(t *testing.T) {
	c, _ := startAttackCluster(t, []simnet.Condition{
		{Kind: simnet.CondForge, From: 0, Until: attackWindow, Nodes: []protocol.NodeID{1}},
	}, 1)
	t0 := runAttackAgreement(t, c, 0, "under-forgery")
	s := c.Stats()
	if s.ForgeFrames == 0 {
		t.Fatal("forge window injected nothing")
	}
	if s.AuthDrops == 0 {
		t.Fatalf("no auth drops despite %d forged frames: %+v", s.ForgeFrames, s)
	}
	assertBattery(t, c, []check.LiveInitiation{{G: 0, V: "under-forgery", T0: t0}})
}

// TestAttackDuplicationSuppressed: every frame duplicated on every
// link; receive-side duplicate suppression drops the extra copies
// (DupDrops), restoring at-most-once delivery. Duplication is legal on
// any link, so all nodes are correct and the full battery must hold.
func TestAttackDuplicationSuppressed(t *testing.T) {
	c, _ := startAttackCluster(t, []simnet.Condition{
		{Kind: simnet.CondDuplicate, From: 0, Until: attackWindow, Copies: 2},
	}, -1)
	t0 := runAttackAgreement(t, c, 0, "under-duplication")
	s := c.Stats()
	if s.DupFrames == 0 {
		t.Fatal("duplicate window injected nothing")
	}
	if s.DupDrops == 0 {
		t.Fatalf("no duplicate drops despite %d injected copies: %+v", s.DupFrames, s)
	}
	assertBattery(t, c, []check.LiveInitiation{{G: 0, V: "under-duplication", T0: t0}})
}

// TestAttackReorderWithinBoundTolerated: every third frame held back by
// d/2 without touching its send tick — delivery order scrambled but
// still within the d bound, which the event-driven protocol absorbs
// (battery clean, ReorderHolds counts the holds).
func TestAttackReorderWithinBoundTolerated(t *testing.T) {
	c, _ := startAttackCluster(t, []simnet.Condition{
		{Kind: simnet.CondReorder, From: 0, Until: attackWindow, Stride: 3},
	}, -1)
	t0 := runAttackAgreement(t, c, 0, "under-reorder")
	s := c.Stats()
	if s.ReorderHolds == 0 {
		t.Fatal("reorder window held nothing")
	}
	assertBattery(t, c, []check.LiveInitiation{{G: 0, V: "under-reorder", T0: t0}})
}

// TestAttackReorderBeyondBoundBecomesLoss: a hostile reorder holding a
// faulty node's frames far past d trips the deadline drop — the
// bounded-delay axiom turns unbounded reordering into plain loss
// (LateDrops), which the protocol tolerates by design.
func TestAttackReorderBeyondBoundBecomesLoss(t *testing.T) {
	c, _ := startAttackCluster(t, []simnet.Condition{
		{Kind: simnet.CondReorder, From: 0, Until: attackWindow, Nodes: []protocol.NodeID{1}, Jitter: 150},
	}, 1)
	t0 := runAttackAgreement(t, c, 0, "under-hostile-reorder")
	flushInFlight(c)
	s := c.Stats()
	if s.ReorderHolds == 0 {
		t.Fatal("hostile reorder window held nothing")
	}
	if s.LateDrops == 0 {
		t.Fatalf("no deadline drops despite %d held frames: %+v", s.ReorderHolds, s)
	}
	assertBattery(t, c, []check.LiveInitiation{{G: 0, V: "under-hostile-reorder", T0: t0}})
}

// TestWANMatrixWithinModel: an asymmetric two-region WAN delay matrix
// plus deterministic per-frame jitter, all within the D/2 environment
// budget — no clamping, full battery, every node decides.
func TestWANMatrixWithinModel(t *testing.T) {
	c, _ := startAttackCluster(t, []simnet.Condition{
		{
			Kind: simnet.CondWAN, From: 0, Until: attackWindow,
			Groups: [][]protocol.NodeID{{0, 1}, {2, 3}},
			Matrix: [][]simtime.Duration{{0, 10}, {12, 0}},
			Jitter: 5,
		},
	}, -1)
	t0 := runAttackAgreement(t, c, 0, "over-wan")
	s := c.Stats()
	if s.Clamps != 0 {
		t.Fatalf("in-model WAN matrix clamped %d sends", s.Clamps)
	}
	assertBattery(t, c, []check.LiveInitiation{{G: 0, V: "over-wan", T0: t0}})
}

// TestWANClampSurfaced: a WAN matrix demanding more delay than the
// model admits is clamped to D/2 — and, since PR 8, counted instead of
// silent: Clamps must record every clamped send while the run stays
// inside the d bound (battery clean).
func TestWANClampSurfaced(t *testing.T) {
	c, _ := startAttackCluster(t, []simnet.Condition{
		{
			Kind: simnet.CondWAN, From: 0, Until: attackWindow,
			Groups: [][]protocol.NodeID{{0, 1}, {2, 3}},
			Matrix: [][]simtime.Duration{{0, 500}, {500, 0}},
		},
	}, -1)
	t0 := runAttackAgreement(t, c, 0, "over-clamped-wan")
	s := c.Stats()
	if s.Clamps == 0 {
		t.Fatal("overloaded WAN matrix never clamped")
	}
	assertBattery(t, c, []check.LiveInitiation{{G: 0, V: "over-clamped-wan", T0: t0}})
}

// TestWANRateCapDefers: a per-link bandwidth cap of 2 frames per d
// window defers the broadcast-wave excess to later windows
// (RateDeferrals) without pushing any delivery past d.
func TestWANRateCapDefers(t *testing.T) {
	c, _ := startAttackCluster(t, []simnet.Condition{
		{
			Kind: simnet.CondWAN, From: 0, Until: attackWindow,
			Groups: [][]protocol.NodeID{{0, 1, 2, 3}},
			Matrix: [][]simtime.Duration{{0}},
			Rate:   1,
		},
	}, -1)
	t0 := runAttackAgreement(t, c, 0, "over-capped-wan")
	s := c.Stats()
	if s.RateDeferrals == 0 {
		t.Fatal("rate cap deferred nothing")
	}
	assertBattery(t, c, []check.LiveInitiation{{G: 0, V: "over-capped-wan", T0: t0}})
}

// TestVirtualLiveTransientRecovery is the in-situ form of the paper's
// self-stabilization claim: a RUNNING virtual cluster has every node's
// protocol state corrupted mid-run through transient.CorruptRunning
// (executed inside each node's event loop, exactly as the daemon's
// control-socket fault path does), and the observed re-stabilization
// time — until the planted phantom "returned" records are swept on
// every node — must stay within Δstb = 2Δreset. A fresh agreement and
// the property battery over the post-recovery suffix then prove the
// system behaves as if the transient never happened.
func TestVirtualLiveTransientRecovery(t *testing.T) {
	c, pp := startAttackCluster(t, nil, -1)
	fake := c.Virtual()

	// A healthy agreement first: the corruption hits a warm system.
	runAttackAgreement(t, c, 0, "pre-fault")

	const markG = protocol.NodeID(3)
	corruptAt := c.NowTicks()
	for _, id := range c.Correct() {
		id := id
		c.DoWait(id, func(n protocol.Node) {
			transient.CorruptRunning(n.(*core.Node), pp, transient.Config{
				Seed:  1000 + int64(id),
				Marks: []protocol.NodeID{markG},
			}, simtime.Local(c.NowTicks()))
		})
	}
	// The phantom must be visible before recovery can be measured.
	for _, id := range c.Correct() {
		id := id
		c.DoWait(id, func(n protocol.Node) {
			if returned, _, _ := n.(*core.Node).Result(markG); !returned {
				t.Errorf("node %d: mark was not planted", id)
			}
		})
	}

	marksCleared := func() bool {
		cleared := true
		for _, id := range c.Correct() {
			id := id
			c.DoWait(id, func(n protocol.Node) {
				if returned, _, _ := n.(*core.Node).Result(markG); returned {
					cleared = false
				}
			})
		}
		return cleared
	}

	// Step virtual time timer by timer, polling coarsely, until every
	// node has swept its phantom or the Δstb budget is exhausted.
	deadline := corruptAt + simtime.Real(pp.DeltaStb())
	recovered := false
	for steps := 0; c.NowTicks() < deadline; steps++ {
		if steps%32 == 0 && marksCleared() {
			recovered = true
			break
		}
		if !fake.Step() {
			break
		}
	}
	if !recovered && !marksCleared() {
		t.Fatalf("phantom returned-records survived Δstb = %d ticks", pp.DeltaStb())
	}
	restab := c.NowTicks() - corruptAt
	if restab <= 0 || restab > simtime.Real(pp.DeltaStb()) {
		t.Fatalf("re-stabilization took %d ticks, want within (0, Δstb=%d]", restab, pp.DeltaStb())
	}
	t.Logf("re-stabilized in %d ticks (Δstb budget %d)", restab, pp.DeltaStb())

	// Let the full stabilization window pass before probing, so the
	// probe's battery measures the promised post-Δstb behaviour.
	c.StepUntil(func() bool { return false }, simtime.Duration(deadline))

	suffixStart := c.NowTicks()
	t0 := runAttackAgreement(t, c, 2, "post-fault")
	var suffix []protocol.TraceEvent
	for _, ev := range c.rec.Events() {
		if ev.RT >= suffixStart {
			suffix = append(suffix, ev)
		}
	}
	lr := &check.LiveResult{Result: BuildResult(pp, suffix, c.Correct(), simtime.Duration(c.NowTicks())+1)}
	if v := lr.Battery([]check.LiveInitiation{{G: 2, V: "post-fault", T0: t0}}); len(v) != 0 {
		t.Fatalf("post-recovery battery: %v", v)
	}
}

// TestAttackClassesRideCoalescedWire sweeps every byte-level attack
// class over the BATCHED wire and proves three things per class: the
// coalescer really shipped multi-frame containers while the attack ran
// (a blanket duplicate window guarantees multi-frame bursts, so the
// check cannot pass vacuously), the class's injection counter fired,
// and its defense counter fired — i.e. the per-class injected-AND-
// rejected accounting of the attack campaign survives coalescing
// unchanged. Tolerated classes (reorder-within-bound, in-model WAN)
// assert toleration: holds counted, zero clamps, battery clean.
func TestAttackClassesRideCoalescedWire(t *testing.T) {
	everywhereDup := simnet.Condition{
		Kind: simnet.CondDuplicate, From: 0, Until: attackWindow, Copies: 2,
	}
	classes := []struct {
		name   string
		cond   simnet.Condition
		faulty protocol.NodeID // -1: all-correct (the class is model-legal)
		check  func(t *testing.T, s Stats)
	}{
		{"corrupt", simnet.Condition{Kind: simnet.CondCorrupt, From: 0, Until: attackWindow, Nodes: []protocol.NodeID{1}}, 1,
			func(t *testing.T, s Stats) {
				if s.CorruptFrames == 0 || s.DecodeDrops == 0 {
					t.Fatalf("corrupt: injected %d, decode drops %d", s.CorruptFrames, s.DecodeDrops)
				}
			}},
		{"replay-stale", simnet.Condition{Kind: simnet.CondReplay, From: 0, Until: attackWindow, Nodes: []protocol.NodeID{1}}, 1,
			func(t *testing.T, s Stats) {
				if s.ReplayFrames == 0 || s.LateDrops == 0 {
					t.Fatalf("stale replay: injected %d, late drops %d", s.ReplayFrames, s.LateDrops)
				}
			}},
		{"replay-xepoch", simnet.Condition{Kind: simnet.CondReplay, From: 0, Until: attackWindow, Nodes: []protocol.NodeID{1}, CrossEpoch: true}, 1,
			func(t *testing.T, s Stats) {
				if s.ReplayFrames == 0 || s.EpochDrops == 0 {
					t.Fatalf("cross-epoch replay: injected %d, epoch drops %d", s.ReplayFrames, s.EpochDrops)
				}
			}},
		{"forge", simnet.Condition{Kind: simnet.CondForge, From: 0, Until: attackWindow, Nodes: []protocol.NodeID{1}}, 1,
			func(t *testing.T, s Stats) {
				if s.ForgeFrames == 0 || s.AuthDrops == 0 {
					t.Fatalf("forge: injected %d, auth drops %d", s.ForgeFrames, s.AuthDrops)
				}
			}},
		{"duplicate", simnet.Condition{Kind: simnet.CondDuplicate, From: 0, Until: attackWindow, Copies: 3}, -1,
			func(t *testing.T, s Stats) {
				if s.DupFrames == 0 || s.DupDrops == 0 {
					t.Fatalf("duplicate: injected %d, dup drops %d", s.DupFrames, s.DupDrops)
				}
			}},
		{"reorder-within", simnet.Condition{Kind: simnet.CondReorder, From: 0, Until: attackWindow, Stride: 3}, -1,
			func(t *testing.T, s Stats) {
				if s.ReorderHolds == 0 {
					t.Fatal("reorder-within: held nothing")
				}
			}},
		{"reorder-beyond", simnet.Condition{Kind: simnet.CondReorder, From: 0, Until: attackWindow, Nodes: []protocol.NodeID{1}, Jitter: 150}, 1,
			func(t *testing.T, s Stats) {
				if s.ReorderHolds == 0 || s.LateDrops == 0 {
					t.Fatalf("reorder-beyond: held %d, late drops %d", s.ReorderHolds, s.LateDrops)
				}
			}},
		{"wan", simnet.Condition{
			Kind: simnet.CondWAN, From: 0, Until: attackWindow,
			Groups: [][]protocol.NodeID{{0, 1}, {2, 3}},
			Matrix: [][]simtime.Duration{{0, 10}, {12, 0}},
			Jitter: 5,
		}, -1,
			func(t *testing.T, s Stats) {
				if s.Clamps != 0 {
					t.Fatalf("wan: in-model matrix clamped %d sends", s.Clamps)
				}
			}},
	}
	for _, tc := range classes {
		t.Run(tc.name, func(t *testing.T) {
			c, _ := startAttackCluster(t,
				[]simnet.Condition{tc.cond, everywhereDup}, tc.faulty)
			t0 := runAttackAgreement(t, c, 0, "coalesced-attack")
			// A second agreement gives replay tapes time to go stale and
			// every class a longer window to coalesce under.
			t1 := runAttackAgreement(t, c, 2, "coalesced-attack-2")
			flushInFlight(c)
			tc.check(t, c.Stats())
			if bs := c.BatchStats(); bs.BatchesSent == 0 || bs.BatchedFrames < 2*bs.BatchesSent {
				t.Fatalf("attack ran but the wire never coalesced: %+v", bs)
			}
			assertBattery(t, c, []check.LiveInitiation{
				{G: 0, V: "coalesced-attack", T0: t0},
				{G: 2, V: "coalesced-attack-2", T0: t1},
			})
		})
	}
}
