package nettrans

import (
	"strconv"
	"time"

	"ssbyz/internal/protocol"
)

// Transport throughput measurement: flood a wall-clock cluster with
// broadcasts from inside one node's event loop and count what the other
// ends accept. This is the instrument behind BenchmarkTransportSendRecv
// and the L1 wire-rate floor — it measures the transport stack (encode,
// coalesce, syscalls, receive shards, decode, dedup, delivery), with the
// protocol state machines stubbed out by NullNode.

// NullNode is a no-op protocol.Node: it acknowledges nothing and sends
// nothing. Throughput runs install it via ClusterConfig.NewNode so the
// pump measures the transport, not the agreement protocol.
type NullNode struct{}

func (NullNode) Start(protocol.Runtime)                      {}
func (NullNode) OnMessage(protocol.NodeID, protocol.Message) {}
func (NullNode) OnTimer(protocol.TimerTag)                   {}

// PumpResult is one throughput run's outcome.
type PumpResult struct {
	// Sent counts messages handed to the transport (count × n for a
	// broadcast pump: every broadcast is n point-to-point sends).
	Sent int64
	// Received counts messages accepted and delivered across all nodes;
	// the shortfall against Sent is genuine datagram loss under overload.
	Received int64
	// Elapsed is the wall-clock span from the first send to the last
	// observed delivery.
	Elapsed time.Duration
}

// MsgsPerSec is the aggregate delivered-message rate.
func (p PumpResult) MsgsPerSec() float64 {
	if p.Elapsed <= 0 {
		return 0
	}
	return float64(p.Received) / p.Elapsed.Seconds()
}

// pumpChunk is how many broadcasts one event-loop closure issues: equal
// to wire.MaxBatchFrames so the coalescer packs full containers with no
// sub-batch residue between chunks.
const pumpChunk = 512

// Pump floods the cluster with count broadcasts from node `from`,
// issued inside its event loop in chunks so the coalescer packs each
// chunk into one container per peer. Every message body is distinct
// (dedup admits them all). It returns once deliveries plateau or the
// timeout passes. Wall-clock clusters only.
func (c *Cluster) Pump(from protocol.NodeID, count int, timeout time.Duration) PumpResult {
	nn := c.nodes[from]
	if nn == nil || c.fake != nil {
		return PumpResult{}
	}
	base := c.Stats()
	start := time.Now()
	var scratch []byte
	for lo := 0; lo < count; lo += pumpChunk {
		lo, hi := lo, lo+pumpChunk
		if hi > count {
			hi = count
		}
		nn.mbox.Enqueue(func() {
			for i := lo; i < hi; i++ {
				scratch = strconv.AppendInt(scratch[:0], int64(i), 10)
				nn.Broadcast(protocol.Message{
					Kind: protocol.Initiator,
					G:    from,
					M:    protocol.Value(scratch),
				})
			}
		})
	}
	// Deliveries plateau when the pipeline has drained (or stalled: under
	// deliberate overload the kernel drops the excess, which is the loss
	// the protocol tolerates). Elapsed runs to the last observed change,
	// excluding the settle window itself.
	deadline := start.Add(timeout)
	last := int64(-1)
	lastChange := start
	const settle = 150 * time.Millisecond
	for {
		cur := c.Stats().Received - base.Received
		now := time.Now()
		if cur != last {
			last, lastChange = cur, now
		} else if cur > 0 && now.Sub(lastChange) > settle {
			break
		}
		if now.After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	s := c.Stats()
	return PumpResult{
		Sent:     s.Sent - base.Sent,
		Received: s.Received - base.Received,
		Elapsed:  lastChange.Sub(start),
	}
}
