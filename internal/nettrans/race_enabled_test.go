//go:build race

package nettrans

// raceEnabled reports that this build runs under the race detector, whose
// 5–20× slowdown makes wall-clock throughput floors meaningless.
const raceEnabled = true
