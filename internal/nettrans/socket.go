package nettrans

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"runtime"
	"sync"

	"ssbyz/internal/protocol"
	"ssbyz/internal/wire"
)

// This file holds the two socket implementations behind NetNode: the UDP
// datagram transport (coalesced frames per datagram, source-address
// sender authentication, kernel-level loss allowed) and the TCP stream
// transport (self-delimiting frames on long-lived per-peer connections,
// hello-based authentication, lossless). Both feed decoded frames into
// NetNode.handleDatagram; everything protocol-visible is identical.
//
// The UDP receive side is the other half of the wire-rate hot path
// (DESIGN.md §11; batch.go is the send half): datagrams are read into
// pooled buffers
// (recvmmsg in batches where the platform supports it — see
// socket_mmsg_linux.go) and handed to per-source ingest shards, so
// decode, authentication, dedup and chaos accounting run off the socket
// goroutine while the kernel keeps filling the next buffers. Sharding by
// source address preserves per-link FIFO order, which the bounded-delay
// model and the dedup window both assume.

// Socket is a bound-but-idle listen socket. Binding is split from
// starting so a cluster can bind every node first (learning ephemeral
// ports) and hand the full peer table to each node afterwards.
type Socket struct {
	transport string
	udp       *net.UDPConn
	tcp       net.Listener
}

// ListenSocket binds addr for the given transport ("" defaults to UDP;
// use "127.0.0.1:0" for an ephemeral loopback port).
func ListenSocket(transport, addr string) (*Socket, error) {
	if transport == "" {
		transport = TransportUDP
	}
	switch transport {
	case TransportUDP:
		ua, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			return nil, fmt.Errorf("nettrans: resolve %q: %w", addr, err)
		}
		conn, err := net.ListenUDP("udp", ua)
		if err != nil {
			return nil, fmt.Errorf("nettrans: listen udp %q: %w", addr, err)
		}
		// Broadcast waves land n² datagrams nearly simultaneously; a
		// roomy kernel buffer keeps a briefly descheduled receiver from
		// turning a burst into loss. Best-effort (the OS may cap it).
		_ = conn.SetReadBuffer(4 << 20)
		return &Socket{transport: TransportUDP, udp: conn}, nil
	case TransportTCP:
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("nettrans: listen tcp %q: %w", addr, err)
		}
		return &Socket{transport: TransportTCP, tcp: ln}, nil
	default:
		return nil, fmt.Errorf("nettrans: unknown transport %q", transport)
	}
}

// Addr returns the bound address.
func (s *Socket) Addr() string {
	switch s.transport {
	case TransportUDP:
		return s.udp.LocalAddr().String()
	case TransportTCP:
		return s.tcp.Addr().String()
	}
	return ""
}

// Close releases the socket (only needed if it was never handed to
// StartWith).
func (s *Socket) Close() {
	if s.udp != nil {
		s.udp.Close()
	}
	if s.tcp != nil {
		s.tcp.Close()
	}
}

// ---- UDP ----

// recvBufSize is the pooled receive buffer size: comfortably above the
// largest datagram the coalescer emits (maxBatchBytes plus one frame and
// the envelope) and the UDP payload ceiling.
const recvBufSize = 64 << 10

// ingestShardCap bounds the number of ingest shards; more shards than
// cores just adds context switches.
const ingestShardCap = 4

// ingestItem is one received datagram in flight from the socket reader
// to an ingest shard: a pooled buffer (returned to the pool by the
// shard worker), the datagram length, and the kernel-reported source.
type ingestItem struct {
	buf *[]byte
	n   int
	src netip.AddrPort
}

// udpTransport sends and receives datagrams through the node's single
// bound socket; because peers send from their listen socket, a
// datagram's source address equals the manifest address of its sender,
// which is what authenticates the claimed node id.
type udpTransport struct {
	nn    *NetNode
	conn  *net.UDPConn
	peers []netip.AddrPort

	// shards are the inbound per-source queues; bufPool recycles the
	// receive buffers the socket reader fills and the shard workers drain.
	shards  []chan ingestItem
	bufPool sync.Pool

	// mmsg fast path (linux amd64/arm64 only; see socket_mmsg_*.go).
	mmsgOK   bool
	rawPeers []rawAddr
}

func newUDPTransport(nn *NetNode, conn *net.UDPConn, peers []string) (*udpTransport, error) {
	t := &udpTransport{nn: nn, conn: conn, peers: make([]netip.AddrPort, len(peers))}
	t.bufPool.New = func() any {
		b := make([]byte, recvBufSize)
		return &b
	}
	for i, p := range peers {
		ua, err := net.ResolveUDPAddr("udp", p)
		if err != nil {
			return nil, fmt.Errorf("nettrans: resolve peer %d %q: %w", i, p, err)
		}
		ap := ua.AddrPort()
		t.peers[i] = netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())
	}
	t.initMMsg()
	nshards := runtime.GOMAXPROCS(0)
	if nshards > ingestShardCap {
		nshards = ingestShardCap
	}
	if nshards < 1 {
		nshards = 1
	}
	t.shards = make([]chan ingestItem, nshards)
	for i := range t.shards {
		ch := make(chan ingestItem, 256)
		t.shards[i] = ch
		nn.wg.Add(1)
		go func() {
			defer nn.wg.Done()
			t.ingestLoop(ch)
		}()
	}
	nn.wg.Add(1)
	go func() {
		defer nn.wg.Done()
		t.recvLoop()
	}()
	return t, nil
}

func (t *udpTransport) addr() string { return t.conn.LocalAddr().String() }

func (t *udpTransport) send(to protocol.NodeID, frame []byte) {
	// Fire and forget: a full socket buffer or ICMP-refused peer is
	// message loss, which the protocol tolerates by design.
	_, _ = t.conn.WriteToUDPAddrPort(frame, t.peers[to])
}

// sendBatch implements batchSender: one flush, one datagram per peer,
// and — where the platform provides sendmmsg — one syscall for all of
// them.
func (t *udpTransport) sendBatch(dsts []protocol.NodeID, frames [][]byte) {
	if t.mmsgOK && len(dsts) > 1 {
		t.sendMMsg(dsts, frames)
		return
	}
	for i, to := range dsts {
		t.send(to, frames[i])
	}
}

func (t *udpTransport) close() { t.conn.Close() }

func (t *udpTransport) getBuf() *[]byte  { return t.bufPool.Get().(*[]byte) }
func (t *udpTransport) putBuf(b *[]byte) { t.bufPool.Put(b) }

// recvLoop is the socket reader: it fills pooled buffers and hands them
// to the ingest shards. When the platform mmsg path is available it
// drains whole batches of datagrams per syscall instead.
func (t *udpTransport) recvLoop() {
	defer t.closeShards()
	if t.recvLoopMMsg() {
		return
	}
	for {
		bp := t.getBuf()
		n, src, err := t.conn.ReadFromUDPAddrPort(*bp)
		if err != nil {
			t.putBuf(bp)
			return // socket closed
		}
		t.dispatch(ingestItem{buf: bp, n: n, src: netip.AddrPortFrom(src.Addr().Unmap(), src.Port())})
	}
}

// dispatch routes one datagram to its source's shard. The mapping is a
// pure function of the source address, so frames of one link always
// land on the same shard and per-link FIFO order survives the fan-out;
// the blocking send is deliberate backpressure (a slow shard fills its
// queue, then the kernel buffer, then the excess is datagram loss — the
// failure mode the protocol already tolerates).
func (t *udpTransport) dispatch(it ingestItem) {
	t.shards[t.shardOf(it.src)] <- it
}

func (t *udpTransport) shardOf(src netip.AddrPort) int {
	if len(t.shards) == 1 {
		return 0
	}
	a16 := src.Addr().As16()
	h := mix64(uint64(src.Port()), binary.LittleEndian.Uint64(a16[8:]), 0, 0)
	return int(h % uint64(len(t.shards)))
}

// closeShards ends the shard workers once the socket reader has exited
// (the reader is the only producer, so closing here is race-free).
func (t *udpTransport) closeShards() {
	for _, ch := range t.shards {
		close(ch)
	}
}

// ingestLoop is one shard worker: decode, authenticate, admit, deliver
// — everything downstream of the socket read — then recycle the buffer.
// The dedup window and the message decoder both copy what they keep, so
// returning the buffer to the pool here cannot leave aliases behind
// (pinned by TestRecvBufferPoolRace under -race).
func (t *udpTransport) ingestLoop(ch chan ingestItem) {
	for it := range ch {
		t.process((*it.buf)[:it.n], it.src)
		t.putBuf(it.buf)
	}
}

func (t *udpTransport) process(dg []byte, src netip.AddrPort) {
	f, consumed, err := wire.DecodeFrame(dg)
	if err != nil || consumed != len(dg) {
		t.nn.decDrop.Add(1)
		return
	}
	if f.Kind == wire.FrameBatch {
		t.nn.handleBatch(f, func(from protocol.NodeID) bool { return t.authenticate(from, src) })
		return
	}
	t.nn.handleFrame(f, t.authenticate(f.From, src))
}

// authenticate checks the datagram's source address against the claimed
// sender's manifest address.
func (t *udpTransport) authenticate(from protocol.NodeID, src netip.AddrPort) bool {
	if from < 0 || int(from) >= len(t.peers) {
		return false
	}
	return t.peers[from] == src
}

// ---- TCP ----

// tcpTransport keeps one lazily-dialed outbound connection per peer
// (frames are self-delimiting, so no extra length prefix is needed) and
// accepts inbound connections whose first frame must be a hello naming
// the peer; subsequent frames are authenticated against that hello and
// the connection's remote IP.
type tcpTransport struct {
	nn    *NetNode
	ln    net.Listener
	peers []string
	out   []*tcpPeer

	// mu guards the inbound set: connections peers dialed to us, which
	// close() must shut down or their read loops would outlive Stop.
	mu      sync.Mutex
	inbound map[net.Conn]struct{}
	closed  bool
}

type tcpPeer struct {
	mu   sync.Mutex
	conn net.Conn
}

func newTCPTransport(nn *NetNode, ln net.Listener, peers []string) (*tcpTransport, error) {
	t := &tcpTransport{nn: nn, ln: ln, peers: peers,
		out: make([]*tcpPeer, len(peers)), inbound: make(map[net.Conn]struct{})}
	for i := range t.out {
		t.out[i] = &tcpPeer{}
	}
	nn.wg.Add(1)
	go func() {
		defer nn.wg.Done()
		t.acceptLoop()
	}()
	return t, nil
}

func (t *tcpTransport) addr() string { return t.ln.Addr().String() }

func (t *tcpTransport) send(to protocol.NodeID, frame []byte) {
	p := t.out[to]
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn == nil {
		t.mu.Lock()
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return // no redial during/after close(): the new conn would leak
		}
		conn, err := net.Dial("tcp", t.peers[to])
		if err != nil {
			return // peer down; TCP is lossless only while peers live
		}
		hello := wire.AppendFrame(nil, wire.Frame{
			Kind: wire.FrameHello, From: t.nn.cfg.ID, Epoch: t.nn.epochID,
		})
		if _, err := conn.Write(hello); err != nil {
			conn.Close()
			return
		}
		// close() may have run while we dialed (it holds p.mu per peer, but
		// could have passed this peer before the dial finished): re-check
		// before publishing, or the stored conn would never be closed.
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.mu.Unlock()
		p.conn = conn
	}
	if _, err := p.conn.Write(frame); err != nil {
		p.conn.Close()
		p.conn = nil // redial on next send
	}
}

func (t *tcpTransport) close() {
	t.mu.Lock()
	t.closed = true
	for conn := range t.inbound {
		conn.Close()
	}
	t.mu.Unlock()
	t.ln.Close()
	for _, p := range t.out {
		p.mu.Lock()
		if p.conn != nil {
			p.conn.Close()
			p.conn = nil
		}
		p.mu.Unlock()
	}
}

func (t *tcpTransport) acceptLoop() {
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.inbound[conn] = struct{}{}
		t.mu.Unlock()
		t.nn.wg.Add(1)
		go func() {
			defer t.nn.wg.Done()
			defer func() {
				t.mu.Lock()
				delete(t.inbound, conn)
				t.mu.Unlock()
				conn.Close()
			}()
			t.readLoop(conn)
		}()
	}
}

// readLoop parses the self-delimiting frame stream of one inbound
// connection. The first frame must be a hello claiming a node id whose
// manifest IP matches the connection's remote IP (the remote port is
// ephemeral for outbound dials, so only the host is checkable — the
// paper's authenticated-channel assumption at LAN fidelity; production
// deployments would wrap the stream in TLS).
func (t *tcpTransport) readLoop(conn net.Conn) {
	var (
		buf       []byte
		peer      protocol.NodeID = -1
		haveHello                 = false
	)
	remoteIP := func() net.IP {
		if a, ok := conn.RemoteAddr().(*net.TCPAddr); ok {
			return a.IP
		}
		return nil
	}()
	chunk := make([]byte, 32<<10)
	for {
		n, err := conn.Read(chunk)
		if n > 0 {
			buf = append(buf, chunk[:n]...)
			for {
				f, consumed, derr := wire.DecodeFrame(buf)
				if errors.Is(derr, wire.ErrTruncated) {
					break // need more bytes
				}
				if derr != nil {
					// A corrupt stream cannot be resynchronized; drop it.
					t.nn.decDrop.Add(1)
					return
				}
				buf = buf[consumed:]
				if !haveHello {
					if f.Kind != wire.FrameHello || !t.ipMatches(f.From, remoteIP) {
						t.nn.authDrops.Add(1)
						return
					}
					peer = f.From
					haveHello = true
					t.nn.handleFrame(f, true)
					continue
				}
				if f.Kind == wire.FrameBatch {
					// Stream transport, same container: inner frames are
					// authenticated against the session identity individually.
					t.nn.handleBatch(f, func(from protocol.NodeID) bool { return from == peer })
					continue
				}
				t.nn.handleFrame(f, f.From == peer)
			}
		}
		if err != nil {
			return
		}
	}
}

// ipMatches checks the claimed sender's manifest host against the
// connection's remote IP.
func (t *tcpTransport) ipMatches(from protocol.NodeID, remote net.IP) bool {
	if from < 0 || int(from) >= len(t.peers) || remote == nil {
		return false
	}
	host, _, err := net.SplitHostPort(t.peers[from])
	if err != nil {
		return false
	}
	want := net.ParseIP(host)
	return want != nil && want.Equal(remote)
}
