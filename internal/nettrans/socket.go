package nettrans

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"ssbyz/internal/protocol"
	"ssbyz/internal/wire"
)

// This file holds the two socket implementations behind NetNode: the UDP
// datagram transport (one frame per datagram, source-address sender
// authentication, kernel-level loss allowed) and the TCP stream transport
// (self-delimiting frames on long-lived per-peer connections, hello-based
// authentication, lossless). Both feed decoded frames into
// NetNode.handleFrame; everything protocol-visible is identical.

// Socket is a bound-but-idle listen socket. Binding is split from
// starting so a cluster can bind every node first (learning ephemeral
// ports) and hand the full peer table to each node afterwards.
type Socket struct {
	transport string
	udp       *net.UDPConn
	tcp       net.Listener
}

// ListenSocket binds addr for the given transport ("" defaults to UDP;
// use "127.0.0.1:0" for an ephemeral loopback port).
func ListenSocket(transport, addr string) (*Socket, error) {
	if transport == "" {
		transport = TransportUDP
	}
	switch transport {
	case TransportUDP:
		ua, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			return nil, fmt.Errorf("nettrans: resolve %q: %w", addr, err)
		}
		conn, err := net.ListenUDP("udp", ua)
		if err != nil {
			return nil, fmt.Errorf("nettrans: listen udp %q: %w", addr, err)
		}
		// Broadcast waves land n² datagrams nearly simultaneously; a
		// roomy kernel buffer keeps a briefly descheduled receiver from
		// turning a burst into loss. Best-effort (the OS may cap it).
		_ = conn.SetReadBuffer(4 << 20)
		return &Socket{transport: TransportUDP, udp: conn}, nil
	case TransportTCP:
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("nettrans: listen tcp %q: %w", addr, err)
		}
		return &Socket{transport: TransportTCP, tcp: ln}, nil
	default:
		return nil, fmt.Errorf("nettrans: unknown transport %q", transport)
	}
}

// Addr returns the bound address.
func (s *Socket) Addr() string {
	switch s.transport {
	case TransportUDP:
		return s.udp.LocalAddr().String()
	case TransportTCP:
		return s.tcp.Addr().String()
	}
	return ""
}

// Close releases the socket (only needed if it was never handed to
// StartWith).
func (s *Socket) Close() {
	if s.udp != nil {
		s.udp.Close()
	}
	if s.tcp != nil {
		s.tcp.Close()
	}
}

// ---- UDP ----

// udpTransport sends and receives one frame per datagram through the
// node's single bound socket; because peers send from their listen
// socket, a datagram's source address equals the manifest address of its
// sender, which is what authenticates the claimed node id.
type udpTransport struct {
	nn    *NetNode
	conn  *net.UDPConn
	peers []*net.UDPAddr
}

func newUDPTransport(nn *NetNode, conn *net.UDPConn, peers []string) (*udpTransport, error) {
	t := &udpTransport{nn: nn, conn: conn, peers: make([]*net.UDPAddr, len(peers))}
	for i, p := range peers {
		ua, err := net.ResolveUDPAddr("udp", p)
		if err != nil {
			return nil, fmt.Errorf("nettrans: resolve peer %d %q: %w", i, p, err)
		}
		t.peers[i] = ua
	}
	nn.wg.Add(1)
	go func() {
		defer nn.wg.Done()
		t.recvLoop()
	}()
	return t, nil
}

func (t *udpTransport) addr() string { return t.conn.LocalAddr().String() }

func (t *udpTransport) send(to protocol.NodeID, frame []byte) {
	// Fire and forget: a full socket buffer or ICMP-refused peer is
	// message loss, which the protocol tolerates by design.
	_, _ = t.conn.WriteToUDP(frame, t.peers[to])
}

func (t *udpTransport) close() { t.conn.Close() }

func (t *udpTransport) recvLoop() {
	buf := make([]byte, 64<<10)
	for {
		n, raddr, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		f, consumed, err := wire.DecodeFrame(buf[:n])
		if err != nil || consumed != n {
			t.nn.decDrop.Add(1)
			continue
		}
		t.nn.handleFrame(f, t.authenticate(f.From, raddr))
	}
}

// authenticate checks the datagram's source address against the claimed
// sender's manifest address.
func (t *udpTransport) authenticate(from protocol.NodeID, raddr *net.UDPAddr) bool {
	if from < 0 || int(from) >= len(t.peers) {
		return false
	}
	want := t.peers[from]
	return want.Port == raddr.Port && want.IP.Equal(raddr.IP)
}

// ---- TCP ----

// tcpTransport keeps one lazily-dialed outbound connection per peer
// (frames are self-delimiting, so no extra length prefix is needed) and
// accepts inbound connections whose first frame must be a hello naming
// the peer; subsequent frames are authenticated against that hello and
// the connection's remote IP.
type tcpTransport struct {
	nn    *NetNode
	ln    net.Listener
	peers []string
	out   []*tcpPeer

	// mu guards the inbound set: connections peers dialed to us, which
	// close() must shut down or their read loops would outlive Stop.
	mu      sync.Mutex
	inbound map[net.Conn]struct{}
	closed  bool
}

type tcpPeer struct {
	mu   sync.Mutex
	conn net.Conn
}

func newTCPTransport(nn *NetNode, ln net.Listener, peers []string) (*tcpTransport, error) {
	t := &tcpTransport{nn: nn, ln: ln, peers: peers,
		out: make([]*tcpPeer, len(peers)), inbound: make(map[net.Conn]struct{})}
	for i := range t.out {
		t.out[i] = &tcpPeer{}
	}
	nn.wg.Add(1)
	go func() {
		defer nn.wg.Done()
		t.acceptLoop()
	}()
	return t, nil
}

func (t *tcpTransport) addr() string { return t.ln.Addr().String() }

func (t *tcpTransport) send(to protocol.NodeID, frame []byte) {
	p := t.out[to]
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn == nil {
		t.mu.Lock()
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return // no redial during/after close(): the new conn would leak
		}
		conn, err := net.Dial("tcp", t.peers[to])
		if err != nil {
			return // peer down; TCP is lossless only while peers live
		}
		hello := wire.AppendFrame(nil, wire.Frame{
			Kind: wire.FrameHello, From: t.nn.cfg.ID, Epoch: t.nn.epochID,
		})
		if _, err := conn.Write(hello); err != nil {
			conn.Close()
			return
		}
		// close() may have run while we dialed (it holds p.mu per peer, but
		// could have passed this peer before the dial finished): re-check
		// before publishing, or the stored conn would never be closed.
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.mu.Unlock()
		p.conn = conn
	}
	if _, err := p.conn.Write(frame); err != nil {
		p.conn.Close()
		p.conn = nil // redial on next send
	}
}

func (t *tcpTransport) close() {
	t.mu.Lock()
	t.closed = true
	for conn := range t.inbound {
		conn.Close()
	}
	t.mu.Unlock()
	t.ln.Close()
	for _, p := range t.out {
		p.mu.Lock()
		if p.conn != nil {
			p.conn.Close()
			p.conn = nil
		}
		p.mu.Unlock()
	}
}

func (t *tcpTransport) acceptLoop() {
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.inbound[conn] = struct{}{}
		t.mu.Unlock()
		t.nn.wg.Add(1)
		go func() {
			defer t.nn.wg.Done()
			defer func() {
				t.mu.Lock()
				delete(t.inbound, conn)
				t.mu.Unlock()
				conn.Close()
			}()
			t.readLoop(conn)
		}()
	}
}

// readLoop parses the self-delimiting frame stream of one inbound
// connection. The first frame must be a hello claiming a node id whose
// manifest IP matches the connection's remote IP (the remote port is
// ephemeral for outbound dials, so only the host is checkable — the
// paper's authenticated-channel assumption at LAN fidelity; production
// deployments would wrap the stream in TLS).
func (t *tcpTransport) readLoop(conn net.Conn) {
	var (
		buf       []byte
		peer      protocol.NodeID = -1
		haveHello                 = false
	)
	remoteIP := func() net.IP {
		if a, ok := conn.RemoteAddr().(*net.TCPAddr); ok {
			return a.IP
		}
		return nil
	}()
	chunk := make([]byte, 32<<10)
	for {
		n, err := conn.Read(chunk)
		if n > 0 {
			buf = append(buf, chunk[:n]...)
			for {
				f, consumed, derr := wire.DecodeFrame(buf)
				if errors.Is(derr, wire.ErrTruncated) {
					break // need more bytes
				}
				if derr != nil {
					// A corrupt stream cannot be resynchronized; drop it.
					t.nn.decDrop.Add(1)
					return
				}
				buf = buf[consumed:]
				if !haveHello {
					if f.Kind != wire.FrameHello || !t.ipMatches(f.From, remoteIP) {
						t.nn.authDrops.Add(1)
						return
					}
					peer = f.From
					haveHello = true
					t.nn.handleFrame(f, true)
					continue
				}
				t.nn.handleFrame(f, f.From == peer)
			}
		}
		if err != nil {
			return
		}
	}
}

// ipMatches checks the claimed sender's manifest host against the
// connection's remote IP.
func (t *tcpTransport) ipMatches(from protocol.NodeID, remote net.IP) bool {
	if from < 0 || int(from) >= len(t.peers) || remote == nil {
		return false
	}
	host, _, err := net.SplitHostPort(t.peers[from])
	if err != nil {
		return false
	}
	want := net.ParseIP(host)
	return want != nil && want.Equal(remote)
}
