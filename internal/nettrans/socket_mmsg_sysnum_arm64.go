//go:build linux

package nettrans

// asm-generic syscall numbers (linux/arm64).
const (
	sysRECVMMSG = 243
	sysSENDMMSG = 269
)
