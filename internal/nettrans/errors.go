package nettrans

import "errors"

// Sentinel errors of the transport's configuration surface, matchable
// with errors.Is (the same discipline as the facade's ErrBadParams):
// manifest and cluster-spec validation used to return bare fmt.Errorf
// strings, which forced the orchestrator to match messages; now every
// validation failure wraps one of these.
var (
	// ErrBadManifest reports a cluster manifest (or a cluster spec built
	// on one) that cannot describe a runnable committee: parameters
	// outside the paper's n > 3f model, a missing address, an unknown
	// transport, an uncompilable chaos schedule, or a missing epoch.
	ErrBadManifest = errors.New("nettrans: bad manifest")
	// ErrEpochSkew reports an incarnation-epoch disagreement: a roll that
	// does not advance a node's incarnation, or a fleet whose members
	// disagree about a peer's current incarnation. Frames across such a
	// skew are rejected by the receive pipeline (epoch_drops), so the
	// orchestrator refuses to create the skew in the first place.
	ErrEpochSkew = errors.New("nettrans: incarnation epoch skew")
)
