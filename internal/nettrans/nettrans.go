// Package nettrans is the socket transport: protocol.Runtime over real
// UDP and TCP sockets, speaking the internal/wire binary codec, with the
// same event-loop/mailbox execution core (internal/eventloop) as the
// in-process livenet transport. It is the layer that takes the protocol
// state machines across process boundaries — serialization, sender
// authentication, packet reordering, genuine wall-clock scheduling — and
// the substrate of the node daemon (cmd/ssbyz-node), the `ssbyz-bench
// -cluster` mode, and the L1 live experiment.
//
// Two transports, two fidelity points against the paper's model:
//
//   - UDP ("udp", the default) is paper-faithful: one datagram per
//     message, loss allowed, and the bounded-delay axiom enforced by
//     deadline drops — a frame whose send tick is more than d in the past
//     when it arrives is discarded, because the model's messages arrive
//     within d or not at all. A late frame therefore counts as message
//     loss at the transport, never as a late delivery the proofs exclude.
//   - TCP ("tcp") is the lossless baseline: a length-delimited frame
//     stream per peer pair with no deadline drops, for separating
//     protocol behaviour from packet loss when debugging.
//
// Sender authentication re-establishes the paper's "the receiver knows
// the sending node of every message" assumption from bytes: every frame
// carries the claimed sender id, and the transport verifies it — for UDP
// against the datagram's source address (peers send from their bound
// listen socket, so source address equals manifest address); for TCP
// against the connection's hello frame and remote IP. Frames from another
// cluster epoch (a previous incarnation on a reused port) are dropped.
// On an open network this would be TLS/MAC territory; on the loopback
// and LAN deployments this package targets, address checking is the
// honest equivalent of the model's authenticated channels (DESIGN.md §7).
package nettrans

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ssbyz/internal/clock"
	"ssbyz/internal/eventloop"
	"ssbyz/internal/protocol"
	"ssbyz/internal/simnet"
	"ssbyz/internal/simtime"
	"ssbyz/internal/wire"
)

// Transport names.
const (
	// TransportUDP is datagram-per-message with deadline drops (the
	// paper-faithful default).
	TransportUDP = "udp"
	// TransportTCP is the lossless stream baseline.
	TransportTCP = "tcp"
)

// NodeConfig configures one socket-backed node.
type NodeConfig struct {
	// ID is this node's identity; Peers[ID] is its own listen address.
	ID protocol.NodeID
	// Params are the protocol constants; Params.D (in ticks) is the
	// deadline-drop horizon on UDP.
	Params protocol.Params
	// Tick is the wall-clock duration of one tick (default 100µs).
	Tick time.Duration
	// Transport selects TransportUDP (default) or TransportTCP.
	Transport string
	// Listen is the address to bind ("127.0.0.1:0" for an ephemeral
	// loopback port). Ignored when a pre-bound socket is supplied.
	Listen string
	// Peers are the peer listen addresses indexed by NodeID, length N.
	Peers []string
	// Epoch is the shared cluster epoch: the wall-clock instant every
	// node's clock reads tick 0, and the base of the incarnation id
	// frames carry. All nodes of a cluster must agree on it (the
	// manifest fixes it).
	Epoch time.Time
	// Incarnation is this node's incarnation number within the cluster
	// epoch: a rolled replacement boots with the previous incarnation
	// plus one, and its frames carry Epoch + Incarnation as their wire
	// epoch id. Zero for a first boot — the wire format is unchanged.
	Incarnation uint64
	// PeerIncarnations seeds the per-peer expected incarnations (length
	// N, indexed by node id; nil means every peer at incarnation 0). The
	// receive pipeline rejects any frame whose epoch id is not the
	// expected incarnation of its claimed sender (epoch_drops), which is
	// what makes an orchestrated roll's old frames provably dead; the
	// expectation is advanced at runtime with BumpPeerEpoch.
	PeerIncarnations []uint64
	// Rec receives trace events (default: a fresh recorder).
	Rec *protocol.Recorder
	// Sink, when non-nil, additionally receives every trace event as it
	// is recorded — the node daemon streams these over its control socket.
	Sink func(protocol.TraceEvent)
	// Conditions is the live chaos schedule (scripted partitions, jitter,
	// churn mapped onto the socket path — see chaos.go).
	Conditions []simnet.Condition
	// Clock is the time source behind the epoch clock, the deadline
	// drops, and every chaos/protocol timer (default clock.Real()). The
	// virtual cluster injects a shared *clock.Fake here.
	Clock clock.Clock
	// LegacyDatagramPerFrame disables the send-side frame coalescer: every
	// protocol message rides its own datagram, exactly the pre-batching
	// wire behaviour. The receive pipeline always understands batch
	// containers, so mixed clusters interoperate; the flag exists to prove
	// (differentially) that coalescing changes only how bytes are packed,
	// never what any node observes.
	LegacyDatagramPerFrame bool
}

// Stats counts the transport's traffic and drop classes. All counters are
// cumulative since Start.
type Stats struct {
	// Sent counts protocol messages handed to the socket (including ones
	// the chaos layer then dropped — the sender paid for them).
	Sent int64
	// Received counts messages accepted and delivered to protocol code.
	Received int64
	// LateDrops counts frames discarded for violating the d deadline
	// (UDP only — the bounded-delay axiom enforced at the transport).
	LateDrops int64
	// AuthDrops counts frames whose claimed sender failed the source
	// address check.
	AuthDrops int64
	// EpochDrops counts frames from another cluster incarnation.
	EpochDrops int64
	// ChaosDrops counts messages eaten by the scripted condition schedule.
	ChaosDrops int64
	// DecodeDrops counts frames that failed to decode (corrupt/truncated).
	DecodeDrops int64
	// DupDrops counts frames discarded by receive-side duplicate
	// suppression: byte-identical to a frame already accepted from the
	// same sender within the last d ticks. The defense against datagram
	// duplication and fresh replays — at-most-once delivery within the
	// deadline window.
	DupDrops int64
	// Clamps counts sends whose scripted environment delay (jitter + wan)
	// exceeded D/2 and was clamped to keep the run inside the paper's
	// bounded-delay model. Non-zero means the schedule asked for more
	// delay than the model admits (previously this clamp was silent).
	Clamps int64
	// RateDeferrals counts frames a wan bandwidth cap pushed into a later
	// d window.
	RateDeferrals int64
	// DupFrames counts extra frame copies injected by duplicate windows.
	DupFrames int64
	// ReorderHolds counts frames held back by reorder windows.
	ReorderHolds int64
	// CorruptFrames counts frames whose encoded bytes a corrupt window
	// flipped a byte in.
	CorruptFrames int64
	// ReplayFrames counts old frames re-emitted by replay windows.
	ReplayFrames int64
	// ForgeFrames counts extra frames emitted under a forged sender id.
	ForgeFrames int64
}

// CounterNames is the fixed order of the Stats counters as a vector —
// the schema of the FrameStats payload a node daemon streams
// (wire.AppendCounters carries the numbers; this list is their meaning).
var CounterNames = []string{
	"sent", "received", "late_drops", "auth_drops", "epoch_drops",
	"chaos_drops", "decode_drops", "dup_drops", "clamps", "rate_deferrals",
	"dup_frames", "reorder_holds", "corrupt_frames", "replay_frames",
	"forge_frames",
}

// Counters flattens s into the CounterNames order for FrameStats
// streaming.
func (s Stats) Counters() []int64 {
	return []int64{
		s.Sent, s.Received, s.LateDrops, s.AuthDrops, s.EpochDrops,
		s.ChaosDrops, s.DecodeDrops, s.DupDrops, s.Clamps, s.RateDeferrals,
		s.DupFrames, s.ReorderHolds, s.CorruptFrames, s.ReplayFrames,
		s.ForgeFrames,
	}
}

// Add accumulates other into s (cluster- and collector-side
// aggregation).
func (s *Stats) Add(other Stats) {
	s.Sent += other.Sent
	s.Received += other.Received
	s.LateDrops += other.LateDrops
	s.AuthDrops += other.AuthDrops
	s.EpochDrops += other.EpochDrops
	s.ChaosDrops += other.ChaosDrops
	s.DecodeDrops += other.DecodeDrops
	s.DupDrops += other.DupDrops
	s.Clamps += other.Clamps
	s.RateDeferrals += other.RateDeferrals
	s.DupFrames += other.DupFrames
	s.ReorderHolds += other.ReorderHolds
	s.CorruptFrames += other.CorruptFrames
	s.ReplayFrames += other.ReplayFrames
	s.ForgeFrames += other.ForgeFrames
}

// BatchStats counts the frame coalescer's packing work. Deliberately kept
// OUTSIDE Stats: the 15-counter vector is the FrameStats schema shared
// with older daemons and the byte-identity surface of the batched-vs-
// legacy differential — coalescing must change how bytes are packed, not
// what any counter observes.
type BatchStats struct {
	// BatchesSent counts multi-frame container datagrams written.
	BatchesSent int64
	// BatchedFrames counts inner frames that rode inside those containers.
	// Single-frame flushes go out raw (byte-identical to the legacy wire)
	// and are counted by neither field.
	BatchedFrames int64
}

// Add accumulates other into s.
func (s *BatchStats) Add(other BatchStats) {
	s.BatchesSent += other.BatchesSent
	s.BatchedFrames += other.BatchedFrames
}

// StatsFromCounters is the inverse of Stats.Counters, tolerating shorter
// vectors from older senders (missing classes read zero).
func StatsFromCounters(v []int64) Stats {
	var s Stats
	fields := []*int64{
		&s.Sent, &s.Received, &s.LateDrops, &s.AuthDrops, &s.EpochDrops,
		&s.ChaosDrops, &s.DecodeDrops, &s.DupDrops, &s.Clamps, &s.RateDeferrals,
		&s.DupFrames, &s.ReorderHolds, &s.CorruptFrames, &s.ReplayFrames,
		&s.ForgeFrames,
	}
	for i, f := range fields {
		if i < len(v) {
			*f = v[i]
		}
	}
	return s
}

// NetNode runs one protocol node behind a socket. It implements
// protocol.Runtime; the node's OnMessage/OnTimer run on a single
// event-loop goroutine exactly as under the simulator.
type NetNode struct {
	cfg       NodeConfig
	clk       clock.Clock
	epochBase uint64 // uint64(Epoch.UnixNano()): incarnation 0's epoch id
	epochID   uint64 // epochBase + cfg.Incarnation: the id stamped on sends
	// peerEpochs[id] is the epoch id this node currently accepts from
	// peer id (epochBase + that peer's incarnation). Atomic because the
	// receive loops read it per frame while an orchestrator bumps it
	// mid-roll from its own goroutine.
	peerEpochs []atomic.Uint64
	node       protocol.Node
	rec        *protocol.Recorder
	mbox       *eventloop.Mailbox
	timers     *eventloop.Timers
	chaos      *chaos
	trans      transport
	co         *coalescer
	wg         sync.WaitGroup

	timerMu sync.Mutex
	nextID  protocol.TimerID
	pending map[protocol.TimerID]clock.Timer

	// payloadScratch/frameScratch back the allocation-free immediate-send
	// path. Safe without a lock: protocol.Runtime's contract is that all
	// methods are called from the node's single event loop, and both
	// socket writes copy the bytes before returning.
	payloadScratch, frameScratch []byte

	// dedup is the receive-side duplicate-suppression window (the defense
	// against datagram duplication and fresh replay).
	dedup dedup

	sent, received                                        atomic.Int64
	lateDrops, authDrops, epochDrops, chaosDrops, decDrop atomic.Int64
	dupDrops, clamps, rateDefers                          atomic.Int64
	dupFrames, reorderHolds                               atomic.Int64
	corruptFrames, replayFrames, forgeFrames              atomic.Int64
	batchesSent, batchedFrames                            atomic.Int64

	stopOnce sync.Once
}

var _ protocol.Runtime = (*NetNode)(nil)

// transport is the socket behind one node: fire-and-forget frame sends
// plus a close that unblocks the receive loops.
type transport interface {
	// send transmits one encoded frame to peer `to`, best-effort.
	send(to protocol.NodeID, frame []byte)
	// addr returns the resolved listen address.
	addr() string
	close()
}

// Start binds cfg.Listen and launches the node: the receive loop, the
// event-loop goroutine, and Node.Start inside it. The returned NetNode
// must be stopped.
func Start(cfg NodeConfig, node protocol.Node) (*NetNode, error) {
	sock, err := ListenSocket(cfg.Transport, cfg.Listen)
	if err != nil {
		return nil, err
	}
	nn, err := StartWith(cfg, sock, node)
	if err != nil {
		sock.Close()
		return nil, err
	}
	return nn, nil
}

// StartWith is Start over a pre-bound socket (the in-process Cluster
// binds all sockets first to learn ephemeral ports, then starts nodes).
func StartWith(cfg NodeConfig, sock *Socket, node protocol.Node) (*NetNode, error) {
	if cfg.Transport == "" {
		cfg.Transport = TransportUDP
	}
	if cfg.Transport != sock.transport {
		return nil, fmt.Errorf("nettrans: config transport %q but socket is %q", cfg.Transport, sock.transport)
	}
	return startNode(cfg, node, func(nn *NetNode) (transport, error) {
		switch cfg.Transport {
		case TransportUDP:
			return newUDPTransport(nn, sock.udp, cfg.Peers)
		case TransportTCP:
			return newTCPTransport(nn, sock.tcp, cfg.Peers)
		default:
			return nil, fmt.Errorf("nettrans: unknown transport %q", cfg.Transport)
		}
	})
}

// startNode validates cfg, assembles the node around the transport the
// factory builds, and launches its event loop. It is the shared tail of
// StartWith (real sockets) and the virtual cluster (in-memory wire).
func startNode(cfg NodeConfig, node protocol.Node, mkTrans func(*NetNode) (transport, error)) (*NetNode, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.Tick <= 0 {
		cfg.Tick = 100 * time.Microsecond
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real()
	}
	if len(cfg.Peers) != cfg.Params.N {
		return nil, fmt.Errorf("nettrans: %d peer addresses for n=%d", len(cfg.Peers), cfg.Params.N)
	}
	if cfg.ID < 0 || int(cfg.ID) >= cfg.Params.N {
		return nil, fmt.Errorf("nettrans: node id %d outside [0,%d)", cfg.ID, cfg.Params.N)
	}
	if cfg.Epoch.IsZero() {
		return nil, fmt.Errorf("nettrans: missing cluster epoch (all nodes must share one)")
	}
	if cfg.Rec == nil {
		cfg.Rec = protocol.NewRecorder()
	}
	ch, err := compileChaos(cfg.Conditions, cfg.Params.N, cfg.Params.D/2, cfg.Params.D)
	if err != nil {
		return nil, err
	}
	if cfg.PeerIncarnations != nil && len(cfg.PeerIncarnations) != cfg.Params.N {
		return nil, fmt.Errorf("%w: %d peer incarnations for n=%d", ErrEpochSkew, len(cfg.PeerIncarnations), cfg.Params.N)
	}
	gate, _ := cfg.Clock.(clock.Gate)
	base := uint64(cfg.Epoch.UnixNano())
	nn := &NetNode{
		cfg:        cfg,
		clk:        cfg.Clock,
		epochBase:  base,
		epochID:    base + cfg.Incarnation,
		peerEpochs: make([]atomic.Uint64, cfg.Params.N),
		node:       node,
		rec:        cfg.Rec,
		mbox:       eventloop.NewMailboxGated(gate),
		timers:     eventloop.NewTimersOn(cfg.Clock),
		chaos:      ch,
		pending:    make(map[protocol.TimerID]clock.Timer),
	}
	for i := range nn.peerEpochs {
		inc := uint64(0)
		if cfg.PeerIncarnations != nil {
			inc = cfg.PeerIncarnations[i]
		}
		if protocol.NodeID(i) == cfg.ID {
			inc = cfg.Incarnation // a node always accepts its own frames
		}
		nn.peerEpochs[i].Store(base + inc)
	}
	nn.dedup.window = cfg.Params.D
	nn.trans, err = mkTrans(nn)
	if err != nil {
		return nil, err
	}
	if !cfg.LegacyDatagramPerFrame {
		nn.co = newCoalescer(nn)
	}
	nn.wg.Add(1)
	go func() {
		defer nn.wg.Done()
		nn.mbox.Loop()
	}()
	nn.mbox.Enqueue(func() { node.Start(nn) })
	return nn, nil
}

// Addr returns the node's resolved listen address (useful with :0).
func (nn *NetNode) Addr() string { return nn.trans.addr() }

// Stop tears the node down: protocol and chaos timers first (waiting out
// in-flight bodies), then the socket and its receive loops, then the
// event loop. After Stop returns nothing of the node is running.
func (nn *NetNode) Stop() {
	nn.stopOnce.Do(func() {
		nn.timers.Stop()
		nn.trans.close()
		nn.mbox.Close()
	})
	nn.wg.Wait()
}

// Do executes fn inside the node's event loop (for General-side
// initiations), returning once enqueued.
func (nn *NetNode) Do(fn func(protocol.Node)) {
	nn.mbox.Enqueue(func() { fn(nn.node) })
}

// DoWait executes fn inside the event loop and blocks until it has run
// (or the node stopped first).
func (nn *NetNode) DoWait(fn func(protocol.Node)) {
	done := make(chan struct{})
	if !nn.mbox.Enqueue(func() {
		defer close(done)
		fn(nn.node)
	}) {
		return
	}
	select {
	case <-done:
	case <-nn.mbox.Done():
	}
}

// Stats returns a snapshot of the traffic counters.
func (nn *NetNode) Stats() Stats {
	return Stats{
		Sent:          nn.sent.Load(),
		Received:      nn.received.Load(),
		LateDrops:     nn.lateDrops.Load(),
		AuthDrops:     nn.authDrops.Load(),
		EpochDrops:    nn.epochDrops.Load(),
		ChaosDrops:    nn.chaosDrops.Load(),
		DecodeDrops:   nn.decDrop.Load(),
		DupDrops:      nn.dupDrops.Load(),
		Clamps:        nn.clamps.Load(),
		RateDeferrals: nn.rateDefers.Load(),
		DupFrames:     nn.dupFrames.Load(),
		ReorderHolds:  nn.reorderHolds.Load(),
		CorruptFrames: nn.corruptFrames.Load(),
		ReplayFrames:  nn.replayFrames.Load(),
		ForgeFrames:   nn.forgeFrames.Load(),
	}
}

// nowTicks returns ticks since the cluster epoch, read off the injected
// clock (the wall clock, or a Fake under virtual time).
func (nn *NetNode) nowTicks() simtime.Real {
	return simtime.Real(nn.clk.Since(nn.cfg.Epoch) / nn.cfg.Tick)
}

// ---- protocol.Runtime ----

// ID implements protocol.Runtime.
func (nn *NetNode) ID() protocol.NodeID { return nn.cfg.ID }

// Now implements protocol.Runtime: ticks since the shared epoch. Live
// clocks are ideal (drift experiments are simulator territory), so every
// node of a cluster reads the same frame up to OS clock quality.
func (nn *NetNode) Now() simtime.Local { return simtime.Local(nn.nowTicks()) }

// Params implements protocol.Runtime.
func (nn *NetNode) Params() protocol.Params { return nn.cfg.Params }

// Send implements protocol.Runtime: encode, consult the chaos schedule,
// and hand the frame to the socket (immediately, or after a scripted
// delay) — executing whatever byte-level attacks the schedule orders on
// the way: corruption, duplication, replay, forgery. Each attack class
// increments its injection counter here; the receive pipeline counts
// the defenses.
func (nn *NetNode) Send(to protocol.NodeID, m protocol.Message) {
	if to < 0 || int(to) >= nn.cfg.Params.N {
		return
	}
	m.From = nn.cfg.ID // authenticated sender identity
	nn.sent.Add(1)
	now := nn.nowTicks()
	plan := nn.chaos.planSend(nn.cfg.ID, to, now)
	nn.sendPlanned(to, m, now, plan)
}

// sendPlanned executes one resolved chaos plan: encode, inject whatever
// the plan orders, ship. Split from Send so Broadcast can route only
// chaos-touched links through it.
func (nn *NetNode) sendPlanned(to protocol.NodeID, m protocol.Message, now simtime.Real, plan sendPlan) {
	if plan.drop {
		nn.chaosDrops.Add(1)
		return
	}
	if plan.clamped {
		nn.clamps.Add(1)
	}
	if plan.rateDeferred {
		nn.rateDefers.Add(1)
	}
	if plan.reorderHeld {
		nn.reorderHolds.Add(1)
	}
	nn.payloadScratch = wire.AppendMessage(nn.payloadScratch[:0], m)
	// The replay attacker records the REAL traffic, before corruption.
	nn.chaos.capture(to, int64(now), nn.payloadScratch)
	if plan.forge >= 0 {
		// The forged twin claims another node's identity; the transport's
		// source check is the defense the campaign expects to fire.
		forged := wire.AppendFrame(nil, wire.Frame{
			Kind:    wire.FrameMessage,
			From:    plan.forge,
			Epoch:   nn.epochID,
			Sent:    int64(now),
			Payload: nn.payloadScratch,
		})
		nn.forgeFrames.Add(1)
		nn.deliverNow(to, forged)
	}
	if plan.replay {
		if e := nn.chaos.pickReplay(now, plan.replayLag, plan.replayCross); e != nil {
			epoch := nn.epochID
			if plan.replayCross {
				epoch++ // a frame from an incarnation that never was
			}
			replayed := wire.AppendFrame(nil, wire.Frame{
				Kind:    wire.FrameMessage,
				From:    nn.cfg.ID,
				Epoch:   epoch,
				Sent:    e.sent, // the ORIGINAL send tick: stale on arrival
				Payload: e.payload,
			})
			nn.replayFrames.Add(1)
			nn.deliverNow(e.to, replayed)
		}
	}
	nn.frameScratch = wire.AppendFrame(nn.frameScratch[:0], wire.Frame{
		Kind:    wire.FrameMessage,
		From:    nn.cfg.ID,
		Epoch:   nn.epochID,
		Sent:    int64(now),
		Payload: nn.payloadScratch,
	})
	if plan.corrupt {
		// One deterministic byte flipped: header hits fail the codec's
		// magic/version/kind checks, payload hits the decoder's bounds.
		idx := int(plan.corruptSeed % uint64(len(nn.frameScratch)))
		nn.frameScratch[idx] ^= 0xFF
		nn.corruptFrames.Add(1)
	}
	copies := 1 + plan.dups
	nn.dupFrames.Add(int64(plan.dups))
	if plan.delay <= 0 {
		// Both sinks copy the bytes before returning (the coalescer into
		// its per-peer buffer, the socket into the kernel), so the scratch
		// is free for the next Send: zero allocations at steady state.
		for i := 0; i < copies; i++ {
			nn.deliverNow(to, nn.frameScratch)
		}
		return
	}
	// A chaos-delayed frame outlives this call; it needs its own copy. It
	// bypasses the coalescer in both modes: its delivery tick is set by
	// its own timer, not by the burst it was born in, so batching it with
	// unrelated later traffic would change the schedule the legacy wire
	// produces.
	frame := append([]byte(nil), nn.frameScratch...)
	nn.timers.AfterFunc(time.Duration(plan.delay)*nn.cfg.Tick, func() {
		for i := 0; i < copies; i++ {
			nn.trans.send(to, frame)
		}
	})
}

// deliverNow hands one encoded frame to the wire on the immediate path:
// through the coalescer when batching is on (the frame joins this event-
// handler burst's per-peer batch), straight to the socket in legacy mode.
// Forged and replayed frames take this path too — attack traffic must
// keep its position in the per-link frame order, or the batched and
// legacy wires would present receivers with different sequences.
func (nn *NetNode) deliverNow(to protocol.NodeID, frame []byte) {
	if nn.co != nil {
		nn.co.add(to, frame)
		return
	}
	nn.trans.send(to, frame)
}

// Broadcast implements protocol.Runtime: n point-to-point sends, the
// node itself included (the model has no broadcast medium).
func (nn *NetNode) Broadcast(m protocol.Message) {
	m.From = nn.cfg.ID // authenticated sender identity
	now := nn.nowTicks()
	encoded := false
	for i := 0; i < nn.cfg.Params.N; i++ {
		to := protocol.NodeID(i)
		nn.sent.Add(1)
		plan := nn.chaos.planSend(nn.cfg.ID, to, now)
		if plan != (sendPlan{forge: -1}) {
			// An attack or environment plan is in force on this link: take
			// the full per-link path (which clobbers the scratch buffers).
			encoded = false
			nn.sendPlanned(to, m, now, plan)
			continue
		}
		// Clean link: the frame bytes do not depend on the recipient, so
		// the n-way fan-out encodes message and frame exactly once.
		if !encoded {
			nn.payloadScratch = wire.AppendMessage(nn.payloadScratch[:0], m)
			nn.frameScratch = wire.AppendFrame(nn.frameScratch[:0], wire.Frame{
				Kind:    wire.FrameMessage,
				From:    nn.cfg.ID,
				Epoch:   nn.epochID,
				Sent:    int64(now),
				Payload: nn.payloadScratch,
			})
			encoded = true
		}
		// The replay attacker records the REAL traffic, per link.
		nn.chaos.capture(to, int64(now), nn.payloadScratch)
		nn.deliverNow(to, nn.frameScratch)
	}
}

// After implements protocol.Runtime.
func (nn *NetNode) After(dl simtime.Duration, tag protocol.TimerTag) protocol.TimerID {
	if dl < 0 {
		dl = 0
	}
	nn.timerMu.Lock()
	nn.nextID++
	id := nn.nextID
	nn.timerMu.Unlock()

	t := nn.timers.AfterFunc(time.Duration(dl)*nn.cfg.Tick, func() {
		nn.timerMu.Lock()
		delete(nn.pending, id)
		nn.timerMu.Unlock()
		nn.mbox.Enqueue(func() { nn.node.OnTimer(tag) })
	})
	if t != nil {
		nn.timerMu.Lock()
		nn.pending[id] = t
		nn.timerMu.Unlock()
	}
	return id
}

// Cancel implements protocol.Runtime. The set-level Cancel also forgets
// the timer in the tracked set, so a daemon cancelling protocol timers
// at the end of every agreement does not accumulate dead entries.
func (nn *NetNode) Cancel(id protocol.TimerID) {
	nn.timerMu.Lock()
	t, ok := nn.pending[id]
	if ok {
		delete(nn.pending, id)
	}
	nn.timerMu.Unlock()
	if ok {
		nn.timers.Cancel(t)
	}
}

// Trace implements protocol.Runtime.
func (nn *NetNode) Trace(ev protocol.TraceEvent) {
	ev.Node = nn.cfg.ID
	ev.RT = nn.nowTicks()
	ev.Tau = nn.Now()
	if ev.TauG != 0 || ev.Kind == protocol.EvDecide || ev.Kind == protocol.EvAbort || ev.Kind == protocol.EvIAccept {
		// Live clocks are ideal, so rt(τG) is the reading itself.
		ev.RTauG = simtime.Real(ev.TauG)
	}
	nn.rec.Add(ev)
	if nn.cfg.Sink != nil {
		nn.cfg.Sink(ev)
	}
}

// BatchStats returns a snapshot of the coalescer counters.
func (nn *NetNode) BatchStats() BatchStats {
	return BatchStats{
		BatchesSent:   nn.batchesSent.Load(),
		BatchedFrames: nn.batchedFrames.Load(),
	}
}

// BumpPeerEpoch advances the epoch id this node accepts from peer id to
// the given incarnation: the orchestrator calls it on every member
// before restarting a rolled peer, so the replacement's frames are
// admitted while every frame of the dead incarnation keeps failing the
// epoch check (epoch_drops). Returns ErrEpochSkew when the bump would
// move the expectation backwards — a stale roll must not resurrect a
// retired incarnation.
func (nn *NetNode) BumpPeerEpoch(peer protocol.NodeID, incarnation uint64) error {
	if peer < 0 || int(peer) >= len(nn.peerEpochs) {
		return fmt.Errorf("%w: peer %d outside [0,%d)", ErrEpochSkew, peer, len(nn.peerEpochs))
	}
	want := nn.epochBase + incarnation
	if cur := nn.peerEpochs[peer].Load(); want < cur {
		return fmt.Errorf("%w: peer %d already at incarnation %d, refusing %d",
			ErrEpochSkew, peer, cur-nn.epochBase, incarnation)
	}
	nn.peerEpochs[peer].Store(want)
	return nil
}

// Incarnation returns this node's incarnation number within the epoch.
func (nn *NetNode) Incarnation() uint64 { return nn.cfg.Incarnation }

// expectedEpoch returns the epoch id currently accepted from the claimed
// sender. An id outside the committee reads as this node's own epoch so
// the frame falls through to the authentication check exactly as before
// incarnations existed (auth_drops, not epoch_drops).
func (nn *NetNode) expectedEpoch(from protocol.NodeID) uint64 {
	if from < 0 || int(from) >= len(nn.peerEpochs) {
		return nn.epochID
	}
	return nn.peerEpochs[from].Load()
}

// ---- receive path (shared by both transports) ----

// admitFrame runs the acceptance pipeline on one decoded frame: epoch
// check, sender authentication (authOK is the transport's source check
// for the claimed id), the d deadline on UDP, duplicate suppression,
// receiver-side churn, payload decode. It returns the decoded message
// and true when the frame should be delivered. Every drop class counts
// here, per frame — a batch container is just packaging, so its inner
// frames are admitted one by one exactly as if each had its own
// datagram. Control-stream kinds (fault, stats) have no business on the
// data path and are discarded as decode drops.
func (nn *NetNode) admitFrame(f wire.Frame, authOK bool, now simtime.Real) (protocol.Message, bool) {
	if f.Epoch != nn.expectedEpoch(f.From) {
		nn.epochDrops.Add(1)
		return protocol.Message{}, false
	}
	switch f.Kind {
	case wire.FrameHello, wire.FrameBye:
		return protocol.Message{}, false // session bookkeeping, nothing to deliver
	case wire.FrameMessage:
	default:
		nn.decDrop.Add(1)
		return protocol.Message{}, false
	}
	if !authOK {
		nn.authDrops.Add(1)
		return protocol.Message{}, false
	}
	if nn.cfg.Transport == TransportUDP && int64(now)-f.Sent > int64(nn.cfg.Params.D) {
		// Bounded-delay enforcement: the model delivers within d or not at
		// all, so a late frame is transport loss, not a late delivery.
		nn.lateDrops.Add(1)
		return protocol.Message{}, false
	}
	if nn.dedup.seen(f, now) {
		// At-most-once within the d window: a byte-identical frame from the
		// same sender was already accepted, so this is datagram duplication
		// or a fresh replay — either way, redundant by construction.
		nn.dupDrops.Add(1)
		return protocol.Message{}, false
	}
	if nn.chaos.onRecv(nn.cfg.ID, now) {
		nn.chaosDrops.Add(1)
		return protocol.Message{}, false
	}
	m, _, err := wire.DecodeMessage(f.Payload)
	if err != nil {
		nn.decDrop.Add(1)
		return protocol.Message{}, false
	}
	m.From = f.From // the envelope, not the body, is authenticated
	return m, true
}

// handleFrame admits one frame and delivers it. It is called from
// receive-loop goroutines; delivery is serialized by the mailbox.
func (nn *NetNode) handleFrame(f wire.Frame, authOK bool) {
	m, ok := nn.admitFrame(f, authOK, nn.nowTicks())
	if !ok {
		return
	}
	from := m.From
	if nn.mbox.Enqueue(func() { nn.node.OnMessage(from, m) }) {
		nn.received.Add(1)
	}
}

// handleBatch unpacks a batch container and admits every inner frame
// individually: per-frame decode (a corrupt inner frame costs one decode
// drop and spares its batch-mates), per-frame authentication of the
// claimed sender, per-frame deadline/dedup/churn. All admitted messages
// are delivered in order through ONE mailbox enqueue — the amortization
// that lets the event loop keep up with a coalesced wire. A broken
// container framing (bad count or length prefix) costs one decode drop
// for the unreadable remainder; frames yielded before the break stand.
func (nn *NetNode) handleBatch(f wire.Frame, auth func(protocol.NodeID) bool) {
	if f.Epoch != nn.expectedEpoch(f.From) {
		nn.epochDrops.Add(1)
		return
	}
	r, err := wire.ReadBatch(f.Payload)
	if err != nil {
		nn.decDrop.Add(1)
		return
	}
	msgs := make([]protocol.Message, 0, wire.MaxBatchFrames/8)
	// One clock read admits the whole container: every inner frame shares
	// the batch's arrival instant (virtual deliveries of one cascade all
	// happen at the same fake-clock tick, so this is also what keeps the
	// batched and legacy wires' deadline decisions identical).
	now := nn.nowTicks()
	for {
		raw, ok := r.Next()
		if !ok {
			break
		}
		inner, consumed, derr := wire.DecodeFrame(raw)
		if derr != nil || consumed != len(raw) {
			nn.decDrop.Add(1)
			continue
		}
		if m, admit := nn.admitFrame(inner, auth(inner.From), now); admit {
			msgs = append(msgs, m)
		}
	}
	if r.Err() != nil {
		nn.decDrop.Add(1)
	}
	if len(msgs) == 0 {
		return
	}
	if nn.mbox.Enqueue(func() {
		for _, m := range msgs {
			nn.node.OnMessage(m.From, m)
		}
	}) {
		nn.received.Add(int64(len(msgs)))
	}
}

// handleDatagram dispatches one decoded top-level frame from the wire:
// batch containers fan out through handleBatch, everything else is a
// single frame. auth answers "could this claimed sender have produced
// this datagram" — for UDP the source-address check, for TCP the session
// identity — and is consulted per inner frame, because a batch carries
// one envelope but every inner frame restates its sender.
func (nn *NetNode) handleDatagram(f wire.Frame, auth func(protocol.NodeID) bool) {
	if f.Kind == wire.FrameBatch {
		nn.handleBatch(f, auth)
		return
	}
	nn.handleFrame(f, auth(f.From))
}
