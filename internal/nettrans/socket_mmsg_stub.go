//go:build !linux || (!amd64 && !arm64)

package nettrans

import "ssbyz/internal/protocol"

// Portable stub for platforms without the sendmmsg/recvmmsg fast path:
// the coalescer still packs frames into batch containers (that is where
// most of the win lives — one datagram per burst per peer), but each
// datagram costs one ordinary socket call.

const mmsgEnabled = false

// rawAddr is unused on this platform.
type rawAddr struct{}

func (t *udpTransport) initMMsg() {}

func (t *udpTransport) recvLoopMMsg() bool { return false }

func (t *udpTransport) sendMMsg(dsts []protocol.NodeID, frames [][]byte) {
	for i, to := range dsts {
		t.send(to, frames[i])
	}
}
