package nettrans

import (
	"encoding/json"
	"fmt"
	"time"

	"ssbyz/internal/protocol"
	"ssbyz/internal/simnet"
	"ssbyz/internal/simtime"
)

// Manifest is the JSON cluster description a node daemon boots from: the
// committee (n, f, d), the tick length that maps protocol ticks to wall
// time, the shared epoch (tick 0 and the frame incarnation id), every
// node's listen address, and an optional chaos schedule shared by all
// nodes. One manifest file, n daemons, one cluster.
type Manifest struct {
	// N, F, D are the paper's committee parameters; F = 0 means the
	// optimal ⌊(n−1)/3⌋, D is in ticks.
	N int              `json:"n"`
	F int              `json:"f,omitempty"`
	D simtime.Duration `json:"d"`
	// TickUS is one tick's wall-clock length in microseconds (default
	// 100, making the default d = 50 ticks read as 5ms).
	TickUS int64 `json:"tick_us,omitempty"`
	// Transport is "udp" (default) or "tcp".
	Transport string `json:"transport,omitempty"`
	// EpochUnixNano is the shared cluster epoch: local clocks read tick 0
	// at this wall instant, and frames carry it as the incarnation id.
	// Set it far enough in the future that every daemon has booted.
	EpochUnixNano int64 `json:"epoch_unix_nano"`
	// Nodes are listen addresses indexed by node id (length N).
	Nodes []string `json:"nodes"`
	// Conditions is the optional chaos schedule (simnet vocabulary,
	// windows in ticks since the epoch).
	Conditions []simnet.Condition `json:"conditions,omitempty"`
}

// Params materializes the protocol constants.
func (m Manifest) Params() protocol.Params {
	pp := protocol.Params{N: m.N, F: m.F, D: m.D}
	if pp.F == 0 {
		pp.F = protocol.MaxFaults(m.N)
	}
	return pp
}

// Tick returns the wall-clock tick length.
func (m Manifest) Tick() time.Duration {
	if m.TickUS <= 0 {
		return 100 * time.Microsecond
	}
	return time.Duration(m.TickUS) * time.Microsecond
}

// Epoch returns the shared epoch instant.
func (m Manifest) Epoch() time.Time { return time.Unix(0, m.EpochUnixNano) }

// Validate checks the manifest: valid committee parameters, one address
// per node, a transport the package speaks, a compilable chaos schedule,
// and a non-zero epoch. Every failure wraps ErrBadManifest, so callers
// branch with errors.Is instead of matching message strings.
func (m Manifest) Validate() error {
	if err := m.Params().Validate(); err != nil {
		return fmt.Errorf("%w: %w", ErrBadManifest, err)
	}
	if len(m.Nodes) != m.N {
		return fmt.Errorf("%w: %d addresses for n=%d", ErrBadManifest, len(m.Nodes), m.N)
	}
	for i, a := range m.Nodes {
		if a == "" {
			return fmt.Errorf("%w: node %d has no address", ErrBadManifest, i)
		}
	}
	switch m.Transport {
	case "", TransportUDP, TransportTCP:
	default:
		return fmt.Errorf("%w: transport %q unknown", ErrBadManifest, m.Transport)
	}
	if m.EpochUnixNano == 0 {
		return fmt.Errorf("%w: no epoch (nodes cannot share tick 0)", ErrBadManifest)
	}
	if _, err := compileChaos(m.Conditions, m.N, m.Params().D/2, m.Params().D); err != nil {
		return fmt.Errorf("%w: %w", ErrBadManifest, err)
	}
	return nil
}

// NodeConfig derives the daemon-side node configuration for id. rec may
// be nil (a fresh recorder); sink taps trace events for the control
// stream.
func (m Manifest) NodeConfig(id protocol.NodeID, rec *protocol.Recorder,
	sink func(protocol.TraceEvent)) NodeConfig {
	transport := m.Transport
	if transport == "" {
		transport = TransportUDP
	}
	return NodeConfig{
		ID:         id,
		Params:     m.Params(),
		Tick:       m.Tick(),
		Transport:  transport,
		Listen:     m.Nodes[id],
		Peers:      m.Nodes,
		Epoch:      m.Epoch(),
		Rec:        rec,
		Sink:       sink,
		Conditions: m.Conditions,
	}
}

// Marshal renders the manifest as indented JSON.
func (m Manifest) Marshal() []byte {
	blob, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		panic(fmt.Sprintf("nettrans: manifest marshal: %v", err)) // plain data; cannot fail
	}
	return append(blob, '\n')
}

// ParseManifest decodes and validates a manifest.
func ParseManifest(blob []byte) (Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return Manifest{}, fmt.Errorf("nettrans: manifest parse: %w", err)
	}
	if err := m.Validate(); err != nil {
		return Manifest{}, err
	}
	return m, nil
}
