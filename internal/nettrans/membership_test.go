package nettrans

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"ssbyz/internal/clock"
	"ssbyz/internal/protocol"
	"ssbyz/internal/simtime"
	"ssbyz/internal/wire"
)

// oldIncarnationProbe forges the replay probe: a protocol frame stamped
// with node from's PREVIOUS incarnation epoch id. After a roll, every
// peer must reject it at the first acceptance-pipeline step
// (EpochDrops) — the proof that a rolled node's old life cannot be
// replayed into its new one.
func oldIncarnationProbe(c *Cluster, from protocol.NodeID, oldInc uint64) []byte {
	return wire.AppendFrame(nil, wire.Frame{
		Kind:  wire.FrameMessage,
		From:  from,
		Epoch: c.WireEpochID(oldInc),
		Sent:  int64(c.NowTicks()),
		Payload: wire.AppendMessage(nil, protocol.Message{
			Kind: protocol.Initiator, G: from, From: from, M: "stale",
		}),
	})
}

// TestVirtualRollReplayRejected drives the membership tentpole end to
// end in virtual time: agree, roll a node (stop → bump incarnation →
// restart), assert every running peer rejects a frame replayed from the
// node's previous incarnation, and assert the rolled node takes part in
// a fresh agreement — the self-stabilization claim that makes rolling
// replacement safe (DESIGN.md §12).
func TestVirtualRollReplayRejected(t *testing.T) {
	pp := virtualParams(7)
	clk := clock.NewFake(time.Time{})
	c, err := NewCluster(ClusterConfig{
		Params: pp,
		Tick:   100 * time.Microsecond,
		Clock:  clk,
		Seed:   11,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Stop()
	budget := time.Duration(pp.DeltaStb()) * c.Tick()

	if _, err := c.Initiate(0, "pre-roll", budget); err != nil {
		t.Fatalf("Initiate: %v", err)
	}
	if done := c.AwaitDecisions(0, "pre-roll", budget); done != 7 {
		t.Fatalf("pre-roll: %d/7 decided", done)
	}

	const rolled = protocol.NodeID(3)
	inc, err := c.RollNode(rolled)
	if err != nil {
		t.Fatalf("RollNode: %v", err)
	}
	if inc != 1 {
		t.Fatalf("RollNode incarnation = %d, want 1", inc)
	}
	if got := c.Incarnations()[rolled]; got != 1 {
		t.Fatalf("Incarnations[%d] = %d, want 1", rolled, got)
	}

	// Replay probe: a frame from incarnation 0 of the rolled node, offered
	// to every running peer. The epoch check sits first in the acceptance
	// pipeline, so each peer counts exactly one EpochDrop for it.
	probe := oldIncarnationProbe(c, rolled, inc-1)
	before := make(map[protocol.NodeID]int64)
	for _, id := range c.Correct() {
		if id == rolled {
			continue
		}
		before[id] = c.NodeStats(id).EpochDrops
		if err := c.InjectFrame(rolled, id, probe); err != nil {
			t.Fatalf("InjectFrame to %d: %v", id, err)
		}
	}
	c.StepUntil(func() bool { return false }, simtime.Duration(c.NowTicks())+pp.D)
	for id, was := range before {
		if got := c.NodeStats(id).EpochDrops; got <= was {
			t.Errorf("node %d: EpochDrops = %d after replay probe, want > %d", id, got, was)
		}
	}

	// The replacement converges like a node recovering from a transient:
	// a fresh agreement must reach all 7 correct slots, rolled one
	// included, within the Δstb budget.
	if _, err := c.Initiate(1, "post-roll", budget); err != nil {
		t.Fatalf("post-roll Initiate: %v", err)
	}
	if done := c.AwaitDecisions(1, "post-roll", budget); done != 7 {
		t.Fatalf("post-roll: %d/7 decided (rolled node did not re-stabilize)", done)
	}
}

// TestAbsentSlotScaleUp boots a cluster with one slot absent (the model
// reads it as crash-faulty), agrees without it, then scales up via
// StartNode and requires the newcomer to join the next agreement.
func TestAbsentSlotScaleUp(t *testing.T) {
	pp := virtualParams(7)
	clk := clock.NewFake(time.Time{})
	c, err := NewCluster(ClusterConfig{
		Params: pp,
		Tick:   100 * time.Microsecond,
		Clock:  clk,
		Seed:   5,
		Absent: []protocol.NodeID{6},
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Stop()
	budget := time.Duration(pp.DeltaStb()) * c.Tick()

	if len(c.Correct()) != 6 || c.Running(6) {
		t.Fatalf("absent slot 6 should not be running: correct=%v", c.Correct())
	}
	if _, err := c.Initiate(0, "six", budget); err != nil {
		t.Fatalf("Initiate: %v", err)
	}
	if done := c.AwaitDecisions(0, "six", budget); done != 6 {
		t.Fatalf("absent phase: %d/6 decided", done)
	}

	if err := c.StartNode(6); err != nil {
		t.Fatalf("StartNode: %v", err)
	}
	if len(c.Correct()) != 7 || !c.Running(6) {
		t.Fatalf("slot 6 should be running after scale-up: correct=%v", c.Correct())
	}
	if _, err := c.Initiate(1, "seven", budget); err != nil {
		t.Fatalf("Initiate: %v", err)
	}
	if done := c.AwaitDecisions(1, "seven", budget); done != 7 {
		t.Fatalf("scale-up phase: %d/7 decided", done)
	}
}

// TestRollCampaignDeterministic replays the same roll campaign twice on
// one seed and requires byte-identical wire records — live membership
// must not cost the virtual path its reproducibility.
func TestRollCampaignDeterministic(t *testing.T) {
	run := func() []byte {
		pp := virtualParams(4)
		clk := clock.NewFake(time.Time{})
		c, err := NewCluster(ClusterConfig{
			Params: pp,
			Tick:   100 * time.Microsecond,
			Clock:  clk,
			Seed:   21,
		})
		if err != nil {
			t.Fatalf("NewCluster: %v", err)
		}
		defer c.Stop()
		budget := time.Duration(pp.DeltaStb()) * c.Tick()
		if _, err := c.Initiate(0, "a", budget); err != nil {
			t.Fatalf("Initiate: %v", err)
		}
		c.AwaitDecisions(0, "a", budget)
		if _, err := c.RollNode(2); err != nil {
			t.Fatalf("RollNode: %v", err)
		}
		if _, err := c.Initiate(1, "b", budget); err != nil {
			t.Fatalf("Initiate: %v", err)
		}
		if done := c.AwaitDecisions(1, "b", budget); done != 4 {
			t.Fatalf("post-roll: %d/4 decided", done)
		}
		var blob []byte
		for _, f := range c.Frames() {
			blob = append(blob, byte(f.From), byte(f.To))
			blob = append(blob, f.Bytes...)
		}
		return blob
	}
	if a, b := run(), run(); !bytes.Equal(a, b) {
		t.Fatalf("roll campaign diverged across identical runs: %d vs %d record bytes", len(a), len(b))
	}
}

// TestMembershipSentinelErrors pins the errors.Is surface of the
// membership layer: backwards incarnation moves and out-of-range bumps
// are ErrEpochSkew, bad manifests are ErrBadManifest.
func TestMembershipSentinelErrors(t *testing.T) {
	pp := virtualParams(4)
	clk := clock.NewFake(time.Time{})
	c, err := NewCluster(ClusterConfig{
		Params: pp,
		Tick:   100 * time.Microsecond,
		Clock:  clk,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Stop()

	if _, err := c.RollNode(3); err != nil {
		t.Fatalf("RollNode: %v", err)
	}
	if err := c.BumpPeerEpoch(3, 0); !errors.Is(err, ErrEpochSkew) {
		t.Errorf("backwards bump: got %v, want ErrEpochSkew", err)
	}
	if err := c.BumpPeerEpoch(99, 1); !errors.Is(err, ErrEpochSkew) {
		t.Errorf("out-of-range bump: got %v, want ErrEpochSkew", err)
	}
	if err := c.BumpPeerEpoch(3, 2); err != nil {
		t.Errorf("forward bump: %v", err)
	}

	bad := Manifest{N: 4, D: 50, Nodes: []string{"a", "b", "c"}, EpochUnixNano: 1}
	if err := bad.Validate(); !errors.Is(err, ErrBadManifest) {
		t.Errorf("short node list: got %v, want ErrBadManifest", err)
	}
	if _, err := ParseManifest([]byte(`{"n":4,"d":50}`)); !errors.Is(err, ErrBadManifest) {
		t.Errorf("ParseManifest: got %v, want ErrBadManifest", err)
	}

	// Membership bookkeeping refusals (plain errors, not sentinels).
	if err := c.StartNode(0); err == nil {
		t.Error("StartNode of a running node succeeded")
	}
	if err := c.StopNode(99); err == nil {
		t.Error("StopNode out of range succeeded")
	}
	if _, err := NewCluster(ClusterConfig{
		Params: pp, Clock: clock.NewFake(time.Time{}),
		Absent: []protocol.NodeID{1, 2},
	}); err == nil {
		t.Error("two absent slots with f=1 accepted")
	}
}

// TestWallRollEpochDrops is the real-socket half of the replay-rejection
// proof: over loopback UDP, roll a node and require (a) every peer to
// count an EpochDrop for the old-incarnation probe and (b) a fresh
// agreement to reach all nodes, the rebooted one included.
func TestWallRollEpochDrops(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hundred-ms live run; skipped in -short")
	}
	pp := protocol.DefaultParams(4)
	pp.D = 250
	c, err := NewCluster(ClusterConfig{Params: pp, Tick: 100 * time.Microsecond})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Stop()

	if _, err := c.Initiate(0, "pre-roll", 5*time.Second); err != nil {
		t.Fatalf("Initiate: %v", err)
	}
	if done := c.AwaitDecisions(0, "pre-roll", 5*time.Second); done != 4 {
		t.Fatalf("pre-roll: %d/4 decided", done)
	}

	const rolled = protocol.NodeID(2)
	inc, err := c.RollNode(rolled)
	if err != nil {
		t.Fatalf("RollNode: %v", err)
	}
	probe := oldIncarnationProbe(c, rolled, inc-1)
	for _, id := range c.Correct() {
		if id == rolled {
			continue
		}
		if err := c.InjectFrame(rolled, id, probe); err != nil {
			t.Fatalf("InjectFrame to %d: %v", id, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		dropped := 0
		for _, id := range c.Correct() {
			if id != rolled && c.NodeStats(id).EpochDrops > 0 {
				dropped++
			}
		}
		if dropped == len(c.Correct())-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d peers counted the replay probe", dropped, len(c.Correct())-1)
		}
		time.Sleep(2 * time.Millisecond)
	}

	if _, err := c.Initiate(1, "post-roll", 5*time.Second); err != nil {
		t.Fatalf("post-roll Initiate: %v", err)
	}
	if done := c.AwaitDecisions(1, "post-roll", 10*time.Second); done != 4 {
		t.Fatalf("post-roll: %d/4 decided", done)
	}
}
