package nettrans

import (
	"bytes"
	"encoding/binary"
	"sync"

	"ssbyz/internal/protocol"
	"ssbyz/internal/simtime"
	"ssbyz/internal/wire"
)

// Receive-side duplicate suppression: the transport-level defense that
// restores the paper's at-most-once delivery from datagram semantics. A
// UDP network (or a duplicate/replay attacker) may deliver the same
// frame twice; the protocol state machines are idempotent under
// identical re-delivery, but counting and proving the defense requires
// catching the duplicate at the transport. A frame is a duplicate when
// a byte-identical (sender, send-tick, payload) triple was already
// accepted within the last d ticks — beyond d the deadline drop owns
// the decision (UDP), so the memory of seen frames can be bounded by
// the window. Matching is on the full bytes, never just a hash, so a
// hash collision can only cost a comparison, never a legitimate
// delivery.
//
// The structure is built for the wire-rate hot path (DESIGN.md §11),
// where every
// accepted frame passes through it (the original whole-table sweep was
// the single hottest function of an n=16 loopback flood — over half its
// CPU). Three ideas keep it O(1) amortized with near-zero GC cost:
//
//  1. Generation rotation instead of per-entry eviction: cur holds
//     acceptances since the last rotation, prev the generation before.
//     Once cur is a full window old it becomes prev, and the old prev —
//     all of it older than the window — is recycled wholesale. The
//     membership test stays exact because matching re-checks each
//     candidate's age; rotation only bounds memory (≤ two windows of
//     traffic, no sweeps, no delete churn).
//  2. Pointer-free tables: entries record their payload as offsets into
//     a per-generation arena, so the maps contain no pointers and the
//     collector never scans them; the arena is a single byte slice,
//     reused across rotations.
//  3. Single-entry fast path: hash collisions between distinct triples
//     are vanishingly rare, so the main table holds one entry per key
//     inline and spills extras to a tiny overflow table.
type dedup struct {
	window simtime.Duration

	mu       sync.Mutex
	cur      dedupGen
	prev     dedupGen
	curStart simtime.Real // acceptance clock at the last rotation
	started  bool
}

// dedupRef is one remembered accepted frame: the identifying triple
// with the payload stored as an arena span, plus the acceptance clock
// for the exact-window check. No pointers — the tables stay invisible
// to the garbage collector.
type dedupRef struct {
	from     protocol.NodeID
	sent     int64
	at       simtime.Real
	off, end uint64 // payload span in the generation's arena
}

// dedupGen is one rotation generation.
type dedupGen struct {
	tab   map[uint64]dedupRef
	over  map[uint64][]dedupRef // rare: distinct triples sharing a hash
	arena []byte
}

func (g *dedupGen) init() {
	g.tab = make(map[uint64]dedupRef, 64)
}

func (g *dedupGen) reset() {
	clear(g.tab)
	if g.over != nil {
		clear(g.over)
	}
	g.arena = g.arena[:0]
}

// match scans this generation for a live byte-identical triple.
func (g *dedupGen) match(key uint64, f wire.Frame, now simtime.Real, w simtime.Duration) bool {
	if g.tab == nil {
		return false
	}
	if e, ok := g.tab[key]; ok {
		if g.refEqual(e, f, now, w) {
			return true
		}
		for _, e := range g.over[key] {
			if g.refEqual(e, f, now, w) {
				return true
			}
		}
	}
	return false
}

func (g *dedupGen) refEqual(e dedupRef, f wire.Frame, now simtime.Real, w simtime.Duration) bool {
	if now-e.at > simtime.Real(w) {
		return false // expired: beyond the window the deadline drop rules
	}
	return e.from == f.From && e.sent == f.Sent && bytes.Equal(g.arena[e.off:e.end], f.Payload)
}

// insert records an accepted frame in this generation.
func (g *dedupGen) insert(key uint64, f wire.Frame, now simtime.Real) {
	off := uint64(len(g.arena))
	g.arena = append(g.arena, f.Payload...)
	e := dedupRef{from: f.From, sent: f.Sent, at: now, off: off, end: uint64(len(g.arena))}
	if _, taken := g.tab[key]; taken {
		if g.over == nil {
			g.over = make(map[uint64][]dedupRef)
		}
		g.over[key] = append(g.over[key], e)
		return
	}
	g.tab[key] = e
}

// seen reports whether f is a byte-identical duplicate of a frame
// accepted within the window, and records f if not.
func (d *dedup) seen(f wire.Frame, now simtime.Real) bool {
	key := dedupHash(f)
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.started {
		d.cur.init()
		d.curStart = now
		d.started = true
	} else if now-d.curStart > simtime.Real(d.window) {
		// cur spans a full window: everything still in prev is older than
		// the window and can never match again — recycle it wholesale.
		d.prev, d.cur = d.cur, d.prev
		if d.cur.tab == nil {
			d.cur.init()
		} else {
			d.cur.reset()
		}
		d.curStart = now
	}
	if d.cur.match(key, f, now, d.window) || d.prev.match(key, f, now, d.window) {
		return true
	}
	d.cur.insert(key, f, now)
	return false
}

// dedupHash mixes the identifying triple, eight payload bytes per step
// (FNV-1a structure widened to word steps — hash quality only steers
// collision rates here; entries disambiguate by exact comparison, so a
// weak spot costs comparisons, never correctness).
func dedupHash(f wire.Frame) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	h = (h ^ uint64(f.From)) * prime
	h = (h ^ uint64(f.Sent)) * prime
	p := f.Payload
	for len(p) >= 8 {
		h = (h ^ binary.LittleEndian.Uint64(p)) * prime
		p = p[8:]
	}
	for _, b := range p {
		h = (h ^ uint64(b)) * prime
	}
	h = (h ^ uint64(len(f.Payload))) * prime
	return h
}
