package nettrans

import (
	"bytes"
	"sync"

	"ssbyz/internal/protocol"
	"ssbyz/internal/simtime"
	"ssbyz/internal/wire"
)

// Receive-side duplicate suppression: the transport-level defense that
// restores the paper's at-most-once delivery from datagram semantics. A
// UDP network (or a duplicate/replay attacker) may deliver the same
// frame twice; the protocol state machines are idempotent under
// identical re-delivery, but counting and proving the defense requires
// catching the duplicate at the transport. A frame is a duplicate when
// a byte-identical (sender, send-tick, payload) triple was already
// accepted within the last d ticks — beyond d the deadline drop owns
// the decision (UDP), so the memory of seen frames can be bounded by
// the window. Matching is on the full bytes, never just a hash, so a
// hash collision can only cost a comparison, never a legitimate
// delivery.

// dedupSweepEvery bounds stale-bucket memory: every this-many inserts
// the whole table is swept for entries older than the window.
const dedupSweepEvery = 1024

// dedupEntry is one remembered accepted frame.
type dedupEntry struct {
	from    protocol.NodeID
	sent    int64
	payload []byte
	at      simtime.Real // receiver clock at acceptance, for pruning
}

// dedup is a windowed exact-match set of recently accepted frames. It
// takes a lock: TCP feeds handleFrame from one goroutine per peer
// connection.
type dedup struct {
	window simtime.Duration

	mu      sync.Mutex
	entries map[uint64][]dedupEntry
	inserts int
}

// seen reports whether f is a byte-identical duplicate of a frame
// accepted within the window, and records f if not.
func (d *dedup) seen(f wire.Frame, now simtime.Real) bool {
	key := dedupHash(f)
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.entries == nil {
		d.entries = make(map[uint64][]dedupEntry)
	}
	bucket := d.entries[key]
	// Prune the bucket in place while scanning for a live exact match.
	kept := bucket[:0]
	dup := false
	for _, e := range bucket {
		if now-e.at > simtime.Real(d.window) {
			continue // expired: beyond the window the deadline drop rules
		}
		if e.from == f.From && e.sent == f.Sent && bytes.Equal(e.payload, f.Payload) {
			dup = true
		}
		kept = append(kept, e)
	}
	if dup {
		d.entries[key] = kept
		return true
	}
	d.entries[key] = append(kept, dedupEntry{
		from:    f.From,
		sent:    f.Sent,
		payload: append([]byte(nil), f.Payload...),
		at:      now,
	})
	d.inserts++
	if d.inserts >= dedupSweepEvery {
		d.inserts = 0
		d.sweepLocked(now)
	}
	return false
}

// sweepLocked drops every expired entry (and empty buckets) so quiet
// buckets cannot accumulate stale frames forever.
func (d *dedup) sweepLocked(now simtime.Real) {
	for key, bucket := range d.entries {
		kept := bucket[:0]
		for _, e := range bucket {
			if now-e.at <= simtime.Real(d.window) {
				kept = append(kept, e)
			}
		}
		if len(kept) == 0 {
			delete(d.entries, key)
		} else {
			d.entries[key] = kept
		}
	}
}

// dedupHash is FNV-1a over the identifying triple; buckets disambiguate
// by exact comparison.
func dedupHash(f wire.Frame) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime
	}
	v := uint64(f.From)
	for i := 0; i < 8; i++ {
		mix(byte(v >> (8 * i)))
	}
	v = uint64(f.Sent)
	for i := 0; i < 8; i++ {
		mix(byte(v >> (8 * i)))
	}
	for _, b := range f.Payload {
		mix(b)
	}
	return h
}
