package simnet

import (
	"math/rand"
	"testing"

	"ssbyz/internal/protocol"
	"ssbyz/internal/simtime"
)

// condWorld builds a 4-node world with deterministic delays and probes on
// every node.
func condWorld(t *testing.T, conds []Condition, legacy bool) (*World, []*probe) {
	t.Helper()
	pp := protocol.DefaultParams(4)
	w := newWorld(t, Config{
		Params: pp, Seed: 1,
		DelayMin: 100, DelayMax: 100,
		Conditions: conds, LegacyConditions: legacy,
	})
	probes := make([]*probe, 4)
	for i := range probes {
		probes[i] = &probe{}
		w.SetNode(protocol.NodeID(i), probes[i])
	}
	w.Start()
	return w, probes
}

func TestConditionValidation(t *testing.T) {
	pp := protocol.DefaultParams(4)
	cases := []struct {
		name string
		cond Condition
		ok   bool
	}{
		{"partition", Condition{Kind: CondPartition, From: 0, Until: 10, Nodes: []protocol.NodeID{1}}, true},
		{"partition without nodes", Condition{Kind: CondPartition, From: 0, Until: 10}, false},
		{"churn without nodes", Condition{Kind: CondChurn, From: 0, Until: 10}, false},
		{"jitter all links", Condition{Kind: CondJitter, From: 0, Until: 10, Jitter: 50}, true},
		{"negative jitter", Condition{Kind: CondJitter, From: 0, Until: 10, Jitter: -1}, false},
		{"empty window", Condition{Kind: CondJitter, From: 10, Until: 10}, false},
		{"unknown kind", Condition{Kind: "meteor", From: 0, Until: 10}, false},
		{"node out of range", Condition{Kind: CondChurn, From: 0, Until: 10, Nodes: []protocol.NodeID{7}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(Config{Params: pp, Conditions: []Condition{tc.cond}})
			if (err == nil) != tc.ok {
				t.Errorf("New error = %v, want ok=%v", err, tc.ok)
			}
		})
	}
	// LegacyConditions must bypass validation along with the machinery.
	if _, err := New(Config{Params: pp, LegacyConditions: true,
		Conditions: []Condition{{Kind: "meteor"}}}); err != nil {
		t.Errorf("LegacyConditions still compiled the schedule: %v", err)
	}
}

func TestPartitionDropsCrossGroupInWindow(t *testing.T) {
	// Node 3 is split off for [1000, 2000): cross messages arriving in the
	// window die, same-group and out-of-window messages live.
	w, probes := condWorld(t, []Condition{
		{Kind: CondPartition, From: 1000, Until: 2000, Nodes: []protocol.NodeID{3}},
	}, false)
	send := func(at simtime.Real, from, to protocol.NodeID, val protocol.Value) {
		w.Scheduler().At(at, func() {
			w.Runtime(from).Send(to, protocol.Message{Kind: protocol.Support, G: 0, M: val})
		})
	}
	send(1100, 0, 3, "cross-in")     // arrives 1200, inside → dropped
	send(1100, 3, 0, "cross-back")   // arrives 1200, inside → dropped
	send(1100, 0, 1, "same-group")   // both outside the split set → delivered
	send(2100, 0, 3, "cross-after")  // arrives 2200, window over → delivered
	send(1950, 0, 3, "cross-closes") // arrives 2050 ≥ Until → delivered
	w.RunUntil(5000)

	got := func(p *probe) []protocol.Value {
		var out []protocol.Value
		for _, r := range p.messages {
			out = append(out, r.msg.M)
		}
		return out
	}
	for _, v := range got(probes[3]) {
		if v == "cross-in" {
			t.Error("partitioned message delivered across the split")
		}
	}
	for _, v := range got(probes[0]) {
		if v == "cross-back" {
			t.Error("partitioned message delivered across the split (reverse)")
		}
	}
	want3 := map[protocol.Value]bool{"cross-after": true, "cross-closes": true}
	for _, v := range got(probes[3]) {
		delete(want3, v)
	}
	if len(want3) != 0 {
		t.Errorf("node 3 missing post-window deliveries: %v", want3)
	}
	found := false
	for _, v := range got(probes[1]) {
		if v == "same-group" {
			found = true
		}
	}
	if !found {
		t.Error("same-group message was dropped")
	}
	if w.ConditionDrops() != 2 {
		t.Errorf("ConditionDrops = %d, want 2", w.ConditionDrops())
	}
	// Dropped messages still count as sent.
	if total, _ := w.MessageCount(); total != 5 {
		t.Errorf("MessageCount = %d, want 5 (drops are sends)", total)
	}
}

func TestJitterStretchesWithinLegalRange(t *testing.T) {
	pp := protocol.DefaultParams(4)
	w := newWorld(t, Config{
		Params: pp, Seed: 1, DelayMin: 100, DelayMax: 400,
		Delay: func(protocol.NodeID, protocol.NodeID, protocol.Message, *rand.Rand) simtime.Duration {
			return 100
		},
		Conditions: []Condition{
			{Kind: CondJitter, From: 1000, Until: 2000, Jitter: 200},
			{Kind: CondJitter, From: 1000, Until: 2000, Jitter: 500}, // clamps at DelayMax
		},
	})
	p := &probe{}
	w.SetNode(0, p)
	w.SetNode(1, &probe{})
	w.SetNode(2, &probe{})
	w.SetNode(3, &probe{})
	w.Start()
	w.Scheduler().At(1100, func() {
		w.Runtime(1).Send(0, protocol.Message{Kind: protocol.Support, G: 0, M: "jittered"})
	})
	w.Scheduler().At(2500, func() {
		w.Runtime(1).Send(0, protocol.Message{Kind: protocol.Support, G: 0, M: "calm"})
	})
	w.RunUntil(5000)
	if len(p.messages) != 2 {
		t.Fatalf("got %d messages, want 2", len(p.messages))
	}
	// Jittered: base delay 100 + 200 + 500, clamped to DelayMax=400 →
	// arrival 1500. Calm: base 100 → arrival 2600.
	if at := p.messages[0].at; at != 1500 {
		t.Errorf("jittered arrival local time = %d, want 1500 (clamped to DelayMax)", at)
	}
	if at := p.messages[1].at; at != 2600 {
		t.Errorf("calm arrival local time = %d, want 2600 (no jitter outside window)", at)
	}
	if w.ConditionDrops() != 0 {
		t.Errorf("jitter dropped messages: %d", w.ConditionDrops())
	}
}

func TestChurnDetachesNodeBothDirections(t *testing.T) {
	// Node 1 is down for [1000, 2000): its sends inside the window die at
	// send time, messages arriving while it is down die at arrival.
	w, probes := condWorld(t, []Condition{
		{Kind: CondChurn, From: 1000, Until: 2000, Nodes: []protocol.NodeID{1}},
	}, false)
	send := func(at simtime.Real, from, to protocol.NodeID, val protocol.Value) {
		w.Scheduler().At(at, func() {
			w.Runtime(from).Send(to, protocol.Message{Kind: protocol.Support, G: 0, M: val})
		})
	}
	send(1500, 1, 0, "from-down")   // sender down → dropped
	send(1850, 0, 1, "into-down")   // arrives 1950, receiver down → dropped
	send(1950, 0, 1, "into-up")     // arrives 2050, recovered → delivered
	send(2100, 1, 0, "after-recov") // sender back up → delivered
	send(500, 2, 0, "unrelated")    // untouched link → delivered
	w.RunUntil(5000)

	vals := func(p *probe) map[protocol.Value]bool {
		out := map[protocol.Value]bool{}
		for _, r := range p.messages {
			out[r.msg.M] = true
		}
		return out
	}
	v0, v1 := vals(probes[0]), vals(probes[1])
	if v0["from-down"] {
		t.Error("message sent by a churned-out node was delivered")
	}
	if v1["into-down"] {
		t.Error("message arriving at a churned-out node was delivered")
	}
	for _, want := range []struct {
		p   map[protocol.Value]bool
		val protocol.Value
	}{{v1, "into-up"}, {v0, "after-recov"}, {v0, "unrelated"}} {
		if !want.p[want.val] {
			t.Errorf("%q should have been delivered", want.val)
		}
	}
	if w.ConditionDrops() != 2 {
		t.Errorf("ConditionDrops = %d, want 2", w.ConditionDrops())
	}
}

func TestConditionsApplyOnBroadcastFanout(t *testing.T) {
	// Conditions must hold on the batched Broadcast path exactly as on
	// point-to-point sends: partition node 3 off and broadcast from 0.
	run := func(legacyFanout bool) (delivered int, drops int64) {
		pp := protocol.DefaultParams(4)
		w := newWorld(t, Config{
			Params: pp, Seed: 7, DelayMin: 100, DelayMax: 100,
			LegacyFanout: legacyFanout,
			Conditions: []Condition{
				{Kind: CondPartition, From: 0, Until: 10_000, Nodes: []protocol.NodeID{3}},
			},
		})
		probes := make([]*probe, 4)
		for i := range probes {
			probes[i] = &probe{}
			w.SetNode(protocol.NodeID(i), probes[i])
		}
		w.Start()
		w.Scheduler().At(500, func() {
			w.Runtime(0).Broadcast(protocol.Message{Kind: protocol.Support, G: 0, M: "b"})
		})
		w.RunUntil(5000)
		for _, p := range probes {
			delivered += len(p.messages)
		}
		return delivered, w.ConditionDrops()
	}
	for _, legacyFanout := range []bool{false, true} {
		delivered, drops := run(legacyFanout)
		// 4 recipients, the cross-partition one (node 3) dropped.
		if delivered != 3 || drops != 1 {
			t.Errorf("legacyFanout=%v: delivered=%d drops=%d, want 3 and 1",
				legacyFanout, delivered, drops)
		}
	}
}

// TestLegacyConditionsDifferential pins the conditions-on code path to the
// bypassed one on a schedule-free world: same seed, byte-identical message
// counts and recorded traces — the machinery must cost nothing and change
// nothing when no condition is scripted.
func TestLegacyConditionsDifferential(t *testing.T) {
	run := func(legacy bool) (*World, *probe) {
		pp := protocol.DefaultParams(4)
		w := newWorld(t, Config{
			Params: pp, Seed: 42, DelayMin: 200, DelayMax: 900,
			Conditions:       nil,
			LegacyConditions: legacy,
		})
		p := &probe{}
		w.SetNode(0, p)
		for i := 1; i < 4; i++ {
			w.SetNode(protocol.NodeID(i), &probe{})
		}
		w.Start()
		for i := 0; i < 20; i++ {
			at := simtime.Real(100 + 137*i)
			from := protocol.NodeID(i % 4)
			w.Scheduler().At(at, func() {
				w.Runtime(from).Broadcast(protocol.Message{Kind: protocol.Support, G: 0, M: "x"})
			})
		}
		w.RunUntil(50_000)
		return w, p
	}
	wOn, pOn := run(false)
	wOff, pOff := run(true)
	totOn, _ := wOn.MessageCount()
	totOff, _ := wOff.MessageCount()
	if totOn != totOff {
		t.Fatalf("message counts differ: %d vs %d", totOn, totOff)
	}
	if wOn.Scheduler().Processed() != wOff.Scheduler().Processed() {
		t.Fatalf("processed-event counts differ: %d vs %d",
			wOn.Scheduler().Processed(), wOff.Scheduler().Processed())
	}
	if len(pOn.messages) != len(pOff.messages) {
		t.Fatalf("deliveries differ: %d vs %d", len(pOn.messages), len(pOff.messages))
	}
	for i := range pOn.messages {
		if pOn.messages[i] != pOff.messages[i] {
			t.Fatalf("delivery %d differs: %+v vs %+v", i, pOn.messages[i], pOff.messages[i])
		}
	}
}
