// Package simnet is the deterministic discrete-event transport. It
// realizes exactly the axioms of the paper's communication model: messages
// between correct nodes are delivered and processed within d (the actual
// per-message delay is drawn from [DelayMin, DelayMax] ≤ d), the sender's
// identity is authenticated, there is no broadcast medium, and each node's
// local clock drifts within (1±ρ) of real time.
//
// Because virtual real time and every node's local reading are both
// first-class, the property checkers can verify the paper's bounds (which
// mix rt(·) and τ(·)) exactly.
//
// A scripted network-condition schedule (conditions.go) can disturb the
// transport deterministically: jitter windows stretch delays within the
// legal [DelayMin, DelayMax] (the model still holds), while timed
// partitions and node churn deliberately suspend the delivery axiom for
// chosen links and windows — the raw material of adversarial scenarios.
package simnet

import (
	"fmt"
	"math/rand"

	"ssbyz/internal/protocol"
	"ssbyz/internal/simtime"
)

// DelayFn picks the delivery delay for one message. It must return a value
// in [min, max]; the world clamps anything outside.
type DelayFn func(from, to protocol.NodeID, m protocol.Message, rng *rand.Rand) simtime.Duration

// Config describes one simulated world.
type Config struct {
	Params protocol.Params
	// Seed drives all randomness (delays, adversaries). Same seed, same run.
	Seed int64
	// DelayMin/DelayMax bound actual message delays. DelayMax must be ≤
	// Params.D − a processing margin; by convention the whole of d is
	// available to the transport (processing is instantaneous in the
	// simulator, matching d ≡ (δ+π)(1+ρ) with π folded in).
	DelayMin, DelayMax simtime.Duration
	// Delay optionally overrides the default uniform-random delay policy.
	Delay DelayFn
	// Clocks optionally sets per-node clocks; nil entries (or a nil slice)
	// default to ideal clocks with zero offset. Use simtime.DriftClock to
	// model drift and offset.
	Clocks []simtime.Clock
	// LegacyFanout forces Broadcast to post one scheduler event per
	// recipient (the pre-batching delivery path). It exists for the
	// differential tests that pin the batched path to the legacy one:
	// both must produce byte-identical traces, message counts, and
	// processed-event counts.
	LegacyFanout bool
	// Conditions is the scripted network-condition schedule — timed
	// partitions, jitter windows, node churn — applied deterministically
	// at delivery time (see conditions.go). An empty schedule leaves the
	// delivery path byte-identical to a condition-free world.
	Conditions []Condition
	// LegacyConditions bypasses the condition machinery entirely (the
	// schedule is ignored). It exists for the differential tests that pin
	// the conditions-on path to the pre-conditions one on a schedule-free
	// config: both must produce byte-identical runs.
	LegacyConditions bool
}

// World is a deterministic simulation of n nodes exchanging messages.
type World struct {
	cfg   Config
	sch   *simtime.Scheduler
	rng   *rand.Rand
	rec   *protocol.Recorder
	nodes []protocol.Node
	rts   []*nodeRT

	// counts tracks sent messages per kind for the complexity experiment
	// (indexed by MsgKind: a map hash per sent message is hot-path cost).
	counts [protocol.BaselineRound + 1]int64
	total  int64

	// dropFn, when set, silently discards matching messages. It is the
	// transient injector's hook for modelling the tail of an incoherent
	// period; scripted targeted partitions (and the other timed network
	// disturbances) are the condition schedule's job — see conditions.go.
	dropFn func(from, to protocol.NodeID, m protocol.Message) bool

	// conds is the compiled condition schedule (empty when none or when
	// Config.LegacyConditions bypasses it); condDrops counts messages the
	// schedule ate.
	conds     []compiledCond
	condDrops int64

	// delPool recycles delivery events so that scheduling one in-flight
	// message performs zero heap allocations (DESIGN.md §5); delSlab
	// carves fresh deliveries out of chunk allocations, so the in-flight
	// peak of a broadcast storm is a few large spans rather than millions
	// of individually tracked heap objects (the GC scan cost at n ≥ 128).
	delPool []*delivery
	delSlab []delivery

	// batchPool recycles fan-out batches, and fanScratch/fanOffs are the
	// per-Broadcast bucketing workspace: fanScratch is indexed by the
	// delay offset within [DelayMin, DelayMax] (two recipients share a
	// batch exactly when they share a delay, hence an arrival tick), and
	// fanOffs lists the offsets in use, in first-use order. Both are
	// reused across broadcasts, so the batched fan-out allocates nothing
	// in steady state (DESIGN.md §5).
	batchPool  []*deliveryBatch
	fanScratch []*deliveryBatch
	fanOffs    []int
	// useBatch selects the batched fan-out: per-tick batches only pay
	// when recipients actually share arrival ticks, i.e. when the delay
	// span is within a small factor of n (they win n× on deterministic
	// delays and lose a bucketing pass on wide scatters, where the
	// per-recipient pooled path is already optimal). Either path yields
	// byte-identical runs, so this is purely a cost choice.
	useBatch bool

	started bool
}

// delivery is one in-flight message: a pooled simtime.Handler, so the
// delivery hot path allocates neither a closure nor a scheduler entry.
type delivery struct {
	w  *World
	to protocol.NodeID
	m  protocol.Message
}

// RunEvent delivers the message. The delivery object returns itself to
// the pool before dispatching, so nodes that send while handling a message
// (the message-driven rounds) can reuse it immediately. Its fields are
// left stale until reuse — clearing them per delivery is measurable at
// n ≥ 128, and the only thing they retain is a short value string.
func (d *delivery) RunEvent() {
	w, to, m := d.w, d.to, d.m
	w.delPool = append(w.delPool, d)
	if n := w.nodes[to]; n != nil {
		n.OnMessage(m.From, m)
	}
}

// deliveryBatch is one broadcast's recipients that share an arrival tick:
// a single pooled scheduler event standing for len(tos) deliveries. The
// recipients are dispatched in the order they were enqueued (ascending
// NodeID within one Broadcast call), which is exactly the (time, seq)
// order the per-recipient fan-out would have produced, so traces are
// byte-identical between the two paths.
type deliveryBatch struct {
	w   *World
	m   protocol.Message
	tos []protocol.NodeID
}

// RunEvent dispatches the batch. Processed-event accounting stays per
// delivery (the batch credits len−1 extras on top of its own Step), so the
// deterministic cost metric is independent of the fan-out mode. The batch
// returns to the pool only after the last dispatch: a nested Broadcast
// issued by a recipient must not reuse the recipient slice mid-iteration.
func (b *deliveryBatch) RunEvent() {
	w, m, tos := b.w, b.m, b.tos
	w.sch.AddProcessed(uint64(len(tos) - 1))
	for _, to := range tos {
		if n := w.nodes[to]; n != nil {
			n.OnMessage(m.From, m)
		}
	}
	b.tos = tos[:0]
	w.batchPool = append(w.batchPool, b)
}

// New builds a world. Nodes must be attached with SetNode before Start.
func New(cfg Config) (*World, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.DelayMax == 0 {
		cfg.DelayMax = cfg.Params.D
	}
	if cfg.DelayMin < 0 || cfg.DelayMin > cfg.DelayMax {
		return nil, fmt.Errorf("simnet: bad delay range [%d,%d]", cfg.DelayMin, cfg.DelayMax)
	}
	if cfg.DelayMax > cfg.Params.D {
		return nil, fmt.Errorf("simnet: DelayMax %d exceeds d=%d", cfg.DelayMax, cfg.Params.D)
	}
	w := &World{
		cfg:   cfg,
		sch:   simtime.NewScheduler(),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		rec:   protocol.NewSequentialRecorder(),
		nodes: make([]protocol.Node, cfg.Params.N),
		rts:   make([]*nodeRT, cfg.Params.N),
		// One bucket per possible delay value: recipients of one broadcast
		// share an arrival tick exactly when they share a delay.
		fanScratch: make([]*deliveryBatch, int(cfg.DelayMax-cfg.DelayMin)+1),
		useBatch:   int64(cfg.DelayMax-cfg.DelayMin)+1 <= 4*int64(cfg.Params.N),
	}
	if len(cfg.Conditions) > 0 && !cfg.LegacyConditions {
		conds, err := compileConditions(cfg.Conditions, cfg.Params.N)
		if err != nil {
			return nil, err
		}
		w.conds = conds
	}
	for i := 0; i < cfg.Params.N; i++ {
		var clk simtime.Clock
		if i < len(cfg.Clocks) {
			clk = cfg.Clocks[i]
		}
		if clk.Wrap == 0 {
			clk.Wrap = cfg.Params.Wrap
		}
		w.rts[i] = &nodeRT{w: w, id: protocol.NodeID(i), clock: clk}
	}
	return w, nil
}

// SetNode attaches the protocol state machine for node id.
func (w *World) SetNode(id protocol.NodeID, n protocol.Node) {
	w.nodes[id] = n
}

// Node returns the state machine attached to id.
func (w *World) Node(id protocol.NodeID) protocol.Node { return w.nodes[id] }

// Runtime returns node id's runtime (exposed for adversaries and the
// transient injector).
func (w *World) Runtime(id protocol.NodeID) protocol.Runtime { return w.rts[id] }

// Recorder returns the shared trace recorder.
func (w *World) Recorder() *protocol.Recorder { return w.rec }

// Scheduler exposes the event queue for scenario scripting (e.g. injecting
// an initiation at a chosen virtual time).
func (w *World) Scheduler() *simtime.Scheduler { return w.sch }

// Rand returns the world's deterministic RNG.
func (w *World) Rand() *rand.Rand { return w.rng }

// Params returns the protocol parameters.
func (w *World) Params() protocol.Params { return w.cfg.Params }

// Now returns current virtual real time.
func (w *World) Now() simtime.Real { return w.sch.Now() }

// LocalNow returns node id's current local reading.
func (w *World) LocalNow(id protocol.NodeID) simtime.Local {
	return w.rts[id].Now()
}

// SetDropFn installs a message filter; messages for which fn returns true
// are discarded in flight. Pass nil to clear.
func (w *World) SetDropFn(fn func(from, to protocol.NodeID, m protocol.Message) bool) {
	w.dropFn = fn
}

// MessageCount returns the total messages sent and a per-kind breakdown.
func (w *World) MessageCount() (int64, map[protocol.MsgKind]int64) {
	out := make(map[protocol.MsgKind]int64)
	for k, v := range w.counts {
		if v != 0 {
			out[protocol.MsgKind(k)] = v
		}
	}
	return w.total, out
}

// Start calls Start on every attached node. Nodes left nil are silent
// (crash-faulty from the beginning).
func (w *World) Start() {
	if w.started {
		return
	}
	w.started = true
	for i, n := range w.nodes {
		if n != nil {
			n.Start(w.rts[i])
		}
	}
}

// RunUntil executes events until virtual real time reaches deadline.
func (w *World) RunUntil(deadline simtime.Real) {
	w.sch.RunUntil(deadline)
}

// delayFor picks the delay for one message.
func (w *World) delayFor(from, to protocol.NodeID, m protocol.Message) simtime.Duration {
	var d simtime.Duration
	if w.cfg.Delay != nil {
		d = w.cfg.Delay(from, to, m, w.rng)
	} else if w.cfg.DelayMax > w.cfg.DelayMin {
		d = w.cfg.DelayMin + simtime.Duration(w.rng.Int63n(int64(w.cfg.DelayMax-w.cfg.DelayMin)+1))
	} else {
		d = w.cfg.DelayMin
	}
	return w.clampDelay(d)
}

func (w *World) clampDelay(d simtime.Duration) simtime.Duration {
	if d < w.cfg.DelayMin {
		d = w.cfg.DelayMin
	}
	if d > w.cfg.DelayMax {
		d = w.cfg.DelayMax
	}
	return d
}

// countMessage applies the per-send accounting (total + per-kind
// counters) and the in-flight drop filter, reporting whether the message
// survives. Both fan-out paths go through it — the byte-identical
// guarantee between them depends on this accounting having exactly one
// implementation. m must still be unstamped here (the filter sees the
// message as sent, From excluded).
func (w *World) countMessage(from, to protocol.NodeID, m protocol.Message) bool {
	w.total++
	if int(m.Kind) < len(w.counts) {
		w.counts[m.Kind]++
	}
	return w.dropFn == nil || !w.dropFn(from, to, m)
}

// deliver schedules the arrival of m at to, after delay. Deliveries are
// uncancellable pooled events: no allocation, no scheduler bookkeeping.
// Condition drops happen after the send accounting — a partitioned
// message was sent and counted; the network ate it.
func (w *World) deliver(from, to protocol.NodeID, m protocol.Message, delay simtime.Duration) {
	drop := false
	if len(w.conds) != 0 {
		delay, drop = w.applyConditions(from, to, delay)
	}
	if !w.countMessage(from, to, m) {
		return
	}
	if drop {
		w.condDrops++
		return
	}
	m.From = from // authenticated identity: stamped by the transport
	w.sch.PostHandlerAfter(delay, w.pooledDelivery(to, m))
}

// pooledDelivery pops (or carves) a delivery event for (to, m).
func (w *World) pooledDelivery(to protocol.NodeID, m protocol.Message) *delivery {
	var d *delivery
	if n := len(w.delPool); n > 0 {
		d = w.delPool[n-1]
		w.delPool = w.delPool[:n-1]
	} else {
		if len(w.delSlab) == cap(w.delSlab) {
			// Full (or nil) slab: start a fresh chunk. The old chunk must
			// not be grown in place — outstanding deliveries point into it.
			w.delSlab = make([]delivery, 0, 512)
		}
		w.delSlab = w.delSlab[:len(w.delSlab)+1]
		d = &w.delSlab[len(w.delSlab)-1]
	}
	*d = delivery{w: w, to: to, m: m}
	return d
}

// pooledBatch pops (or makes) an empty fan-out batch for m.
func (w *World) pooledBatch(m protocol.Message) *deliveryBatch {
	var b *deliveryBatch
	if n := len(w.batchPool); n > 0 {
		b = w.batchPool[n-1]
		w.batchPool = w.batchPool[:n-1]
	} else {
		b = new(deliveryBatch)
	}
	b.w, b.m = w, m
	return b
}

// broadcastFrom implements Runtime.Broadcast: one send to every node,
// including the sender (the model has no broadcast medium). The batched
// path draws the same delay sequence the per-recipient path would
// (ascending recipient ID, so the RNG stream is untouched), buckets
// recipients by arrival tick, and posts ONE pooled batch event per
// distinct tick — up to n× less scheduler traffic per broadcast (all of
// it when delays are deterministic) with the exact per-recipient
// (time, seq) delivery order of the legacy path, so traces, message
// counts, and processed-event counts are byte-identical between the two.
func (w *World) broadcastFrom(from protocol.NodeID, m protocol.Message) {
	n := w.cfg.Params.N
	if w.cfg.LegacyFanout || !w.useBatch {
		for to := 0; to < n; to++ {
			w.deliver(from, protocol.NodeID(to), m, w.delayFor(from, protocol.NodeID(to), m))
		}
		return
	}
	sm := m
	sm.From = from // authenticated identity: stamped by the transport
	for to := 0; to < n; to++ {
		toID := protocol.NodeID(to)
		delay := w.delayFor(from, toID, m)
		drop := false
		if len(w.conds) != 0 {
			delay, drop = w.applyConditions(from, toID, delay)
		}
		if !w.countMessage(from, toID, m) {
			continue
		}
		if drop {
			w.condDrops++
			continue
		}
		off := int(delay - w.cfg.DelayMin)
		b := w.fanScratch[off]
		if b == nil {
			b = w.pooledBatch(sm)
			w.fanScratch[off] = b
			w.fanOffs = append(w.fanOffs, off)
		}
		b.tos = append(b.tos, toID)
	}
	// Flush in first-use order: batches sit at distinct ticks, so the
	// posting order among them is immaterial to execution order — it only
	// has to be deterministic.
	for _, off := range w.fanOffs {
		b := w.fanScratch[off]
		w.fanScratch[off] = nil
		delay := w.cfg.DelayMin + simtime.Duration(off)
		if len(b.tos) == 1 {
			// A lone recipient degrades to a plain delivery: smaller event,
			// and the batch returns to the pool immediately.
			to := b.tos[0]
			*b = deliveryBatch{tos: b.tos[:0]}
			w.batchPool = append(w.batchPool, b)
			w.sch.PostHandlerAfter(delay, w.pooledDelivery(to, sm))
			continue
		}
		w.sch.PostHandlerAfter(delay, b)
	}
	w.fanOffs = w.fanOffs[:0]
}

// InjectDelivery schedules a raw message delivery outside the normal send
// path. The transient injector uses it to model residue of the incoherent
// period: spurious messages that arrive right after coherence begins. The
// claimed sender From must be set by the caller. The event is a pooled
// handler, honoring the no-allocation delivery invariant.
func (w *World) InjectDelivery(to protocol.NodeID, m protocol.Message, at simtime.Real) {
	w.sch.PostHandler(at, w.pooledDelivery(to, m))
}
