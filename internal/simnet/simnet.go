// Package simnet is the deterministic discrete-event transport. It
// realizes exactly the axioms of the paper's communication model: messages
// between correct nodes are delivered and processed within d (the actual
// per-message delay is drawn from [DelayMin, DelayMax] ≤ d), the sender's
// identity is authenticated, there is no broadcast medium, and each node's
// local clock drifts within (1±ρ) of real time.
//
// Because virtual real time and every node's local reading are both
// first-class, the property checkers can verify the paper's bounds (which
// mix rt(·) and τ(·)) exactly.
package simnet

import (
	"fmt"
	"math/rand"

	"ssbyz/internal/protocol"
	"ssbyz/internal/simtime"
)

// DelayFn picks the delivery delay for one message. It must return a value
// in [min, max]; the world clamps anything outside.
type DelayFn func(from, to protocol.NodeID, m protocol.Message, rng *rand.Rand) simtime.Duration

// Config describes one simulated world.
type Config struct {
	Params protocol.Params
	// Seed drives all randomness (delays, adversaries). Same seed, same run.
	Seed int64
	// DelayMin/DelayMax bound actual message delays. DelayMax must be ≤
	// Params.D − a processing margin; by convention the whole of d is
	// available to the transport (processing is instantaneous in the
	// simulator, matching d ≡ (δ+π)(1+ρ) with π folded in).
	DelayMin, DelayMax simtime.Duration
	// Delay optionally overrides the default uniform-random delay policy.
	Delay DelayFn
	// Clocks optionally sets per-node clocks; nil entries (or a nil slice)
	// default to ideal clocks with zero offset. Use simtime.DriftClock to
	// model drift and offset.
	Clocks []simtime.Clock
}

// World is a deterministic simulation of n nodes exchanging messages.
type World struct {
	cfg   Config
	sch   *simtime.Scheduler
	rng   *rand.Rand
	rec   *protocol.Recorder
	nodes []protocol.Node
	rts   []*nodeRT

	// counts tracks sent messages per kind for the complexity experiment
	// (indexed by MsgKind: a map hash per sent message is hot-path cost).
	counts [protocol.BaselineRound + 1]int64
	total  int64

	// dropFn, when set, silently discards matching messages (used to model
	// the tail of an incoherent period and targeted partitions).
	dropFn func(from, to protocol.NodeID, m protocol.Message) bool

	// delPool recycles delivery events so that scheduling one in-flight
	// message performs zero heap allocations (DESIGN.md §5).
	delPool []*delivery

	started bool
}

// delivery is one in-flight message: a pooled simtime.Handler, so the
// delivery hot path allocates neither a closure nor a scheduler entry.
type delivery struct {
	w  *World
	to protocol.NodeID
	m  protocol.Message
}

// RunEvent delivers the message. The delivery object returns itself to
// the pool before dispatching, so nodes that send while handling a message
// (the message-driven rounds) can reuse it immediately.
func (d *delivery) RunEvent() {
	w, to, m := d.w, d.to, d.m
	*d = delivery{}
	w.delPool = append(w.delPool, d)
	if n := w.nodes[to]; n != nil {
		n.OnMessage(m.From, m)
	}
}

// New builds a world. Nodes must be attached with SetNode before Start.
func New(cfg Config) (*World, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.DelayMax == 0 {
		cfg.DelayMax = cfg.Params.D
	}
	if cfg.DelayMin < 0 || cfg.DelayMin > cfg.DelayMax {
		return nil, fmt.Errorf("simnet: bad delay range [%d,%d]", cfg.DelayMin, cfg.DelayMax)
	}
	if cfg.DelayMax > cfg.Params.D {
		return nil, fmt.Errorf("simnet: DelayMax %d exceeds d=%d", cfg.DelayMax, cfg.Params.D)
	}
	w := &World{
		cfg:   cfg,
		sch:   simtime.NewScheduler(),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		rec:   protocol.NewRecorder(),
		nodes: make([]protocol.Node, cfg.Params.N),
		rts:   make([]*nodeRT, cfg.Params.N),
	}
	for i := 0; i < cfg.Params.N; i++ {
		var clk simtime.Clock
		if i < len(cfg.Clocks) {
			clk = cfg.Clocks[i]
		}
		if clk.Wrap == 0 {
			clk.Wrap = cfg.Params.Wrap
		}
		w.rts[i] = &nodeRT{w: w, id: protocol.NodeID(i), clock: clk}
	}
	return w, nil
}

// SetNode attaches the protocol state machine for node id.
func (w *World) SetNode(id protocol.NodeID, n protocol.Node) {
	w.nodes[id] = n
}

// Node returns the state machine attached to id.
func (w *World) Node(id protocol.NodeID) protocol.Node { return w.nodes[id] }

// Runtime returns node id's runtime (exposed for adversaries and the
// transient injector).
func (w *World) Runtime(id protocol.NodeID) protocol.Runtime { return w.rts[id] }

// Recorder returns the shared trace recorder.
func (w *World) Recorder() *protocol.Recorder { return w.rec }

// Scheduler exposes the event queue for scenario scripting (e.g. injecting
// an initiation at a chosen virtual time).
func (w *World) Scheduler() *simtime.Scheduler { return w.sch }

// Rand returns the world's deterministic RNG.
func (w *World) Rand() *rand.Rand { return w.rng }

// Params returns the protocol parameters.
func (w *World) Params() protocol.Params { return w.cfg.Params }

// Now returns current virtual real time.
func (w *World) Now() simtime.Real { return w.sch.Now() }

// LocalNow returns node id's current local reading.
func (w *World) LocalNow(id protocol.NodeID) simtime.Local {
	return w.rts[id].Now()
}

// SetDropFn installs a message filter; messages for which fn returns true
// are discarded in flight. Pass nil to clear.
func (w *World) SetDropFn(fn func(from, to protocol.NodeID, m protocol.Message) bool) {
	w.dropFn = fn
}

// MessageCount returns the total messages sent and a per-kind breakdown.
func (w *World) MessageCount() (int64, map[protocol.MsgKind]int64) {
	out := make(map[protocol.MsgKind]int64)
	for k, v := range w.counts {
		if v != 0 {
			out[protocol.MsgKind(k)] = v
		}
	}
	return w.total, out
}

// Start calls Start on every attached node. Nodes left nil are silent
// (crash-faulty from the beginning).
func (w *World) Start() {
	if w.started {
		return
	}
	w.started = true
	for i, n := range w.nodes {
		if n != nil {
			n.Start(w.rts[i])
		}
	}
}

// RunUntil executes events until virtual real time reaches deadline.
func (w *World) RunUntil(deadline simtime.Real) {
	w.sch.RunUntil(deadline)
}

// delayFor picks the delay for one message.
func (w *World) delayFor(from, to protocol.NodeID, m protocol.Message) simtime.Duration {
	var d simtime.Duration
	if w.cfg.Delay != nil {
		d = w.cfg.Delay(from, to, m, w.rng)
	} else if w.cfg.DelayMax > w.cfg.DelayMin {
		d = w.cfg.DelayMin + simtime.Duration(w.rng.Int63n(int64(w.cfg.DelayMax-w.cfg.DelayMin)+1))
	} else {
		d = w.cfg.DelayMin
	}
	return w.clampDelay(d)
}

func (w *World) clampDelay(d simtime.Duration) simtime.Duration {
	if d < w.cfg.DelayMin {
		d = w.cfg.DelayMin
	}
	if d > w.cfg.DelayMax {
		d = w.cfg.DelayMax
	}
	return d
}

// deliver schedules the arrival of m at to, after delay. Deliveries are
// uncancellable pooled events: no allocation, no scheduler bookkeeping.
func (w *World) deliver(from, to protocol.NodeID, m protocol.Message, delay simtime.Duration) {
	w.total++
	if int(m.Kind) < len(w.counts) {
		w.counts[m.Kind]++
	}
	if w.dropFn != nil && w.dropFn(from, to, m) {
		return
	}
	m.From = from // authenticated identity: stamped by the transport
	var d *delivery
	if n := len(w.delPool); n > 0 {
		d = w.delPool[n-1]
		w.delPool = w.delPool[:n-1]
	} else {
		d = new(delivery)
	}
	*d = delivery{w: w, to: to, m: m}
	w.sch.PostHandlerAfter(delay, d)
}

// InjectDelivery schedules a raw message delivery outside the normal send
// path. The transient injector uses it to model residue of the incoherent
// period: spurious messages that arrive right after coherence begins. The
// claimed sender From must be set by the caller.
func (w *World) InjectDelivery(to protocol.NodeID, m protocol.Message, at simtime.Real) {
	w.sch.Post(at, func() {
		if n := w.nodes[to]; n != nil {
			n.OnMessage(m.From, m)
		}
	})
}
