package simnet

import (
	"math/rand"

	"ssbyz/internal/protocol"
	"ssbyz/internal/simtime"
)

// nodeRT implements protocol.Runtime for one simulated node.
type nodeRT struct {
	w      *World
	id     protocol.NodeID
	clock  simtime.Clock
	nextID protocol.TimerID
	timers map[protocol.TimerID]simtime.EventID
}

var _ protocol.Runtime = (*nodeRT)(nil)

func (rt *nodeRT) ID() protocol.NodeID { return rt.id }

func (rt *nodeRT) Now() simtime.Local { return rt.clock.ReadAt(rt.w.sch.Now()) }

func (rt *nodeRT) Params() protocol.Params { return rt.w.cfg.Params }

func (rt *nodeRT) Send(to protocol.NodeID, m protocol.Message) {
	rt.w.deliver(rt.id, to, m, rt.w.delayFor(rt.id, to, m))
}

func (rt *nodeRT) Broadcast(m protocol.Message) {
	rt.w.broadcastFrom(rt.id, m)
}

func (rt *nodeRT) After(dl simtime.Duration, tag protocol.TimerTag) protocol.TimerID {
	if dl < 0 {
		dl = 0
	}
	if rt.timers == nil {
		rt.timers = make(map[protocol.TimerID]simtime.EventID)
	}
	rt.nextID++
	id := rt.nextID
	evID := rt.w.sch.After(rt.clock.RealAfter(dl), func() {
		delete(rt.timers, id)
		if n := rt.w.nodes[rt.id]; n != nil {
			n.OnTimer(tag)
		}
	})
	rt.timers[id] = evID
	return id
}

func (rt *nodeRT) Cancel(id protocol.TimerID) {
	if evID, ok := rt.timers[id]; ok {
		rt.w.sch.Cancel(evID)
		delete(rt.timers, id)
	}
}

func (rt *nodeRT) Trace(ev protocol.TraceEvent) {
	ev.Node = rt.id
	ev.RT = rt.w.sch.Now()
	ev.Tau = rt.Now()
	if ev.TauG != 0 || ev.Kind == protocol.EvDecide || ev.Kind == protocol.EvAbort || ev.Kind == protocol.EvIAccept {
		ev.RTauG = rt.realOf(ev.TauG)
	}
	rt.w.rec.Add(ev)
}

// realOf converts a recent local reading back to virtual real time by
// rolling the clock back from the current instant. It is exact for ideal
// clocks and accurate to rounding for drifting ones; valid for readings in
// the recent past (well under half the wrap modulus).
func (rt *nodeRT) realOf(tau simtime.Local) simtime.Real {
	now := rt.w.sch.Now()
	elapsedLocal := simtime.WrapSub(rt.Now(), tau, rt.clock.Wrap)
	return now - simtime.Real(rt.clock.RealAfter(elapsedLocal))
}

// AdversaryRuntime is the extended runtime available to Byzantine node
// implementations in the simulator: precise control over per-message
// timing within the network's legal delay range (the standard
// "adversary schedules the network" power) plus shared randomness.
// It deliberately does NOT allow sender spoofing: the paper's network
// authenticates identities once it is non-faulty.
type AdversaryRuntime interface {
	protocol.Runtime
	// SendAt delivers m to a single node with a chosen delay, clamped into
	// the network's [DelayMin, DelayMax].
	SendAt(to protocol.NodeID, m protocol.Message, delay simtime.Duration)
	// Rand exposes the deterministic world RNG.
	Rand() *rand.Rand
	// RealNow leaks virtual real time (an omniscient adversary).
	RealNow() simtime.Real
}

func (rt *nodeRT) SendAt(to protocol.NodeID, m protocol.Message, delay simtime.Duration) {
	rt.w.deliver(rt.id, to, m, rt.w.clampDelay(delay))
}

func (rt *nodeRT) Rand() *rand.Rand { return rt.w.rng }

func (rt *nodeRT) RealNow() simtime.Real { return rt.w.sch.Now() }

var _ AdversaryRuntime = (*nodeRT)(nil)
