package simnet

import (
	"testing"

	"ssbyz/internal/protocol"
	"ssbyz/internal/simtime"
)

// probe is a minimal protocol.Node recording everything it sees.
type probe struct {
	rt       protocol.Runtime
	started  bool
	messages []recvd
	timers   []protocol.TimerTag
	onStart  func(rt protocol.Runtime)
}

type recvd struct {
	from protocol.NodeID
	msg  protocol.Message
	at   simtime.Local
}

func (p *probe) Start(rt protocol.Runtime) {
	p.rt = rt
	p.started = true
	if p.onStart != nil {
		p.onStart(rt)
	}
}

func (p *probe) OnMessage(from protocol.NodeID, m protocol.Message) {
	p.messages = append(p.messages, recvd{from: from, msg: m, at: p.rt.Now()})
}

func (p *probe) OnTimer(tag protocol.TimerTag) { p.timers = append(p.timers, tag) }

func newWorld(t *testing.T, cfg Config) *World {
	t.Helper()
	if cfg.Params.N == 0 {
		cfg.Params = protocol.DefaultParams(4)
	}
	w, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return w
}

func TestNewValidation(t *testing.T) {
	pp := protocol.DefaultParams(4)
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"defaults", Config{Params: pp}, true},
		{"bad params", Config{Params: protocol.Params{N: 6, F: 2, D: 10}}, false},
		{"delay above d", Config{Params: pp, DelayMax: pp.D + 1}, false},
		{"inverted range", Config{Params: pp, DelayMin: 900, DelayMax: 500}, false},
		{"negative min", Config{Params: pp, DelayMin: -1, DelayMax: 5}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.cfg); (err == nil) != tc.ok {
				t.Errorf("New error = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestDeliveryWithinBounds(t *testing.T) {
	pp := protocol.DefaultParams(4)
	w := newWorld(t, Config{Params: pp, Seed: 1, DelayMin: 200, DelayMax: 700})
	probes := make([]*probe, 4)
	for i := range probes {
		probes[i] = &probe{}
		w.SetNode(protocol.NodeID(i), probes[i])
	}
	w.Start()
	var sentAt simtime.Real
	w.Scheduler().At(100, func() {
		sentAt = w.Now()
		w.Runtime(0).Broadcast(protocol.Message{Kind: protocol.Support, G: 0, M: "x"})
	})
	w.RunUntil(5000)
	for i, p := range probes {
		if len(p.messages) != 1 {
			t.Fatalf("node %d received %d messages, want 1", i, len(p.messages))
		}
		lat := simtime.Duration(p.messages[0].at) - simtime.Duration(sentAt)
		if lat < 200 || lat > 700 {
			t.Errorf("node %d delivery latency %d outside [200,700]", i, lat)
		}
	}
}

func TestSenderIsAuthenticated(t *testing.T) {
	w := newWorld(t, Config{Seed: 2})
	p := &probe{}
	w.SetNode(0, p)
	w.SetNode(1, &probe{})
	w.SetNode(2, &probe{})
	w.SetNode(3, &probe{})
	w.Start()
	// Node 3 claims to be node 1 inside the body; the transport must stamp
	// the true sender.
	w.Scheduler().At(0, func() {
		w.Runtime(3).Send(0, protocol.Message{Kind: protocol.Support, G: 0, M: "x", From: 1})
	})
	w.RunUntil(5000)
	if len(p.messages) != 1 {
		t.Fatalf("received %d messages, want 1", len(p.messages))
	}
	if p.messages[0].from != 3 || p.messages[0].msg.From != 3 {
		t.Errorf("sender not authenticated: from=%d msg.From=%d, want 3", p.messages[0].from, p.messages[0].msg.From)
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	run := func(seed int64) []recvd {
		w := newWorld(t, Config{Seed: seed})
		p := &probe{}
		w.SetNode(0, p)
		for i := 1; i < 4; i++ {
			w.SetNode(protocol.NodeID(i), &probe{})
		}
		w.Start()
		for k := 0; k < 10; k++ {
			k := k
			w.Scheduler().At(simtime.Real(k*100), func() {
				w.Runtime(1).Broadcast(protocol.Message{Kind: protocol.Support, G: 0, M: protocol.Value(rune('a' + k))})
			})
		}
		w.RunUntil(50000)
		return p.messages
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatalf("different event counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := run(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical delivery schedules")
	}
}

func TestDropFn(t *testing.T) {
	w := newWorld(t, Config{Seed: 3})
	p := &probe{}
	w.SetNode(0, p)
	for i := 1; i < 4; i++ {
		w.SetNode(protocol.NodeID(i), &probe{})
	}
	w.SetDropFn(func(from, to protocol.NodeID, m protocol.Message) bool { return to == 0 })
	w.Start()
	w.Scheduler().At(0, func() {
		w.Runtime(1).Broadcast(protocol.Message{Kind: protocol.Support, G: 0, M: "x"})
	})
	w.RunUntil(5000)
	if len(p.messages) != 0 {
		t.Errorf("dropped message delivered: %+v", p.messages)
	}
	total, _ := w.MessageCount()
	if total != 4 {
		t.Errorf("MessageCount = %d, want 4 (drops still count as sends)", total)
	}
}

func TestMessageCountPerKind(t *testing.T) {
	w := newWorld(t, Config{Seed: 4})
	for i := 0; i < 4; i++ {
		w.SetNode(protocol.NodeID(i), &probe{})
	}
	w.Start()
	w.Scheduler().At(0, func() {
		w.Runtime(0).Broadcast(protocol.Message{Kind: protocol.Support, G: 0})
		w.Runtime(0).Send(1, protocol.Message{Kind: protocol.Echo, G: 0})
	})
	w.RunUntil(5000)
	total, byKind := w.MessageCount()
	if total != 5 {
		t.Errorf("total = %d, want 5", total)
	}
	if byKind[protocol.Support] != 4 || byKind[protocol.Echo] != 1 {
		t.Errorf("byKind = %v", byKind)
	}
}

func TestTimerOnDriftingClock(t *testing.T) {
	pp := protocol.DefaultParams(4)
	clocks := []simtime.Clock{
		simtime.DriftClock(0, -100_000, 0), // 10% slow
		{}, {}, {},
	}
	w := newWorld(t, Config{Params: pp, Seed: 5, Clocks: clocks})
	p := &probe{}
	var fireLocal simtime.Local
	p.onStart = func(rt protocol.Runtime) {
		start := rt.Now()
		rt.After(1000, protocol.TimerTag{Name: "t"})
		fireLocal = start
	}
	w.SetNode(0, p)
	for i := 1; i < 4; i++ {
		w.SetNode(protocol.NodeID(i), &probe{})
	}
	w.Start()
	w.RunUntil(5000)
	if len(p.timers) != 1 {
		t.Fatalf("timers fired: %d, want 1", len(p.timers))
	}
	// On a 10% slow clock, 1000 local ticks need ≥ 1111 real ticks; the
	// local elapsed at fire time must be ≥ the requested 1000.
	elapsed := w.LocalNow(0).Sub(fireLocal)
	if elapsed < 1000 {
		t.Errorf("timer fired after %d local ticks, want ≥ 1000", elapsed)
	}
}

func TestTimerCancel(t *testing.T) {
	w := newWorld(t, Config{Seed: 6})
	p := &probe{}
	var id protocol.TimerID
	p.onStart = func(rt protocol.Runtime) {
		id = rt.After(1000, protocol.TimerTag{Name: "t"})
	}
	w.SetNode(0, p)
	for i := 1; i < 4; i++ {
		w.SetNode(protocol.NodeID(i), &probe{})
	}
	w.Start()
	w.Scheduler().At(10, func() { w.Runtime(0).Cancel(id) })
	w.RunUntil(5000)
	if len(p.timers) != 0 {
		t.Errorf("cancelled timer fired: %v", p.timers)
	}
}

func TestNegativeTimerFiresImmediately(t *testing.T) {
	w := newWorld(t, Config{Seed: 7})
	p := &probe{}
	p.onStart = func(rt protocol.Runtime) {
		rt.After(-50, protocol.TimerTag{Name: "neg"})
	}
	w.SetNode(0, p)
	for i := 1; i < 4; i++ {
		w.SetNode(protocol.NodeID(i), &probe{})
	}
	w.Start()
	w.RunUntil(1)
	if len(p.timers) != 1 {
		t.Errorf("negative-delay timer did not fire promptly: %v", p.timers)
	}
}

func TestInjectDelivery(t *testing.T) {
	w := newWorld(t, Config{Seed: 8})
	p := &probe{}
	w.SetNode(0, p)
	for i := 1; i < 4; i++ {
		w.SetNode(protocol.NodeID(i), &probe{})
	}
	w.Start()
	// Forged sender: models residue of the faulty network period.
	w.InjectDelivery(0, protocol.Message{Kind: protocol.Ready, G: 2, M: "ghost", From: 2}, 500)
	w.RunUntil(1000)
	if len(p.messages) != 1 || p.messages[0].from != 2 {
		t.Fatalf("injected delivery missing or wrong: %+v", p.messages)
	}
	total, _ := w.MessageCount()
	if total != 0 {
		t.Errorf("injected delivery counted as a send: %d", total)
	}
}

func TestAdversarySendAtClamped(t *testing.T) {
	pp := protocol.DefaultParams(4)
	w := newWorld(t, Config{Params: pp, Seed: 9, DelayMin: 100, DelayMax: 300})
	p := &probe{}
	w.SetNode(0, p)
	for i := 1; i < 4; i++ {
		w.SetNode(protocol.NodeID(i), &probe{})
	}
	w.Start()
	w.Scheduler().At(0, func() {
		adv := w.Runtime(3).(AdversaryRuntime)
		adv.SendAt(0, protocol.Message{Kind: protocol.Support, G: 0, M: "early"}, 0)
		adv.SendAt(0, protocol.Message{Kind: protocol.Support, G: 0, M: "late"}, 99999)
	})
	w.RunUntil(5000)
	if len(p.messages) != 2 {
		t.Fatalf("received %d messages, want 2", len(p.messages))
	}
	for _, r := range p.messages {
		at := simtime.Duration(r.at)
		if at < 100 || at > 300 {
			t.Errorf("adversarial delay escaped the clamp: delivered at %d", at)
		}
	}
}

func TestNilNodeIsSilent(t *testing.T) {
	w := newWorld(t, Config{Seed: 10})
	p := &probe{}
	w.SetNode(0, p)
	w.SetNode(1, &probe{})
	w.SetNode(2, &probe{})
	// Node 3 left nil: sends to it must not panic.
	w.Start()
	w.Scheduler().At(0, func() {
		w.Runtime(0).Broadcast(protocol.Message{Kind: protocol.Support, G: 0, M: "x"})
	})
	w.RunUntil(5000)
}

func TestStartIdempotent(t *testing.T) {
	w := newWorld(t, Config{Seed: 11})
	p := &probe{}
	startCount := 0
	p.onStart = func(protocol.Runtime) { startCount++ }
	w.SetNode(0, p)
	for i := 1; i < 4; i++ {
		w.SetNode(protocol.NodeID(i), &probe{})
	}
	w.Start()
	w.Start()
	if startCount != 1 {
		t.Errorf("Start ran %d times, want 1", startCount)
	}
}

func TestClockOffsetsVisible(t *testing.T) {
	clocks := []simtime.Clock{{OffsetTicks: 5000}, {}, {}, {}}
	w := newWorld(t, Config{Seed: 12, Clocks: clocks})
	for i := 0; i < 4; i++ {
		w.SetNode(protocol.NodeID(i), &probe{})
	}
	w.Start()
	w.RunUntil(100)
	if got := w.LocalNow(0) - w.LocalNow(1); got != 5000 {
		t.Errorf("offset difference = %d, want 5000", got)
	}
}

func TestTraceStampsNodeAndTimes(t *testing.T) {
	w := newWorld(t, Config{Seed: 13})
	for i := 0; i < 4; i++ {
		w.SetNode(protocol.NodeID(i), &probe{})
	}
	w.Start()
	w.Scheduler().At(777, func() {
		w.Runtime(2).Trace(protocol.TraceEvent{Kind: protocol.EvInvoke, G: 1})
	})
	w.RunUntil(1000)
	evs := w.Recorder().Events()
	if len(evs) != 1 {
		t.Fatalf("recorded %d events, want 1", len(evs))
	}
	if evs[0].Node != 2 || evs[0].RT != 777 {
		t.Errorf("trace stamp = node %d rt %d, want node 2 rt 777", evs[0].Node, evs[0].RT)
	}
}

// TestRTauGReconstruction: the transport's realOf must invert the local
// clock exactly for ideal clocks and within rounding for drifting ones.
func TestRTauGReconstruction(t *testing.T) {
	clocks := []simtime.Clock{
		{OffsetTicks: 1234},
		simtime.DriftClock(0, +200, 0),
		{}, {},
	}
	w := newWorld(t, Config{Seed: 14, Clocks: clocks})
	for i := 0; i < 4; i++ {
		w.SetNode(protocol.NodeID(i), &probe{})
	}
	w.Start()
	var tauAt500 simtime.Local
	w.Scheduler().At(500, func() { tauAt500 = w.LocalNow(0) })
	w.Scheduler().At(900, func() {
		w.Runtime(0).Trace(protocol.TraceEvent{Kind: protocol.EvIAccept, G: 0, TauG: tauAt500})
	})
	w.RunUntil(1000)
	evs := w.Recorder().ByKind(protocol.EvIAccept)
	if len(evs) != 1 {
		t.Fatalf("events = %d, want 1", len(evs))
	}
	if diff := evs[0].RTauG - 500; diff < -1 || diff > 1 {
		t.Errorf("rt(τG) reconstructed as %d, want 500±1", evs[0].RTauG)
	}
}
