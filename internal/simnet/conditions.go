package simnet

import (
	"fmt"

	"ssbyz/internal/protocol"
	"ssbyz/internal/simtime"
)

// This file implements the network-condition schedule: a deterministic,
// declarative script of transport-level disturbances — timed partitions,
// per-link jitter windows, and node churn — applied at delivery time.
// Conditions are pure functions of (virtual time, endpoints): they consume
// no randomness and touch no scheduler state, so a world with an empty
// schedule is byte-identical to one built before this machinery existed
// (Config.LegacyConditions bypasses the code path entirely; the
// differential tests pin the two).
//
// Model-legality matters here. Jitter only stretches delays WITHIN the
// configured [DelayMin, DelayMax] (clamped), so a jittered run still
// satisfies the paper's bounded-delay axiom and every proved property must
// hold. Partitions and churn DROP messages, which suspends the delivery
// axiom for the affected links: the property battery stays sound only if
// drops are confined to links touching faulty nodes, or to windows outside
// any agreement's active span — the scenario generator enforces exactly
// that (DESIGN.md §6).

// Condition kinds. The string form is the JSON vocabulary of scenario
// specs.
const (
	// CondPartition splits the nodes into Nodes vs the rest for the
	// window: messages crossing between the two groups (either direction)
	// whose arrival falls inside the window are dropped.
	CondPartition = "partition"
	// CondJitter adds Jitter extra delay, clamped into the network's
	// [DelayMin, DelayMax], to messages whose unjittered arrival falls in
	// the window; an empty Nodes list hits every link, otherwise only
	// links with an endpoint in Nodes.
	CondJitter = "jitter"
	// CondChurn detaches Nodes from the network for the window — a NIC
	// crash with recovery: nothing they send while down leaves, nothing
	// arriving while they are down is delivered. Local timers keep
	// running (the node's state survives, as a recovering node's must).
	CondChurn = "churn"
)

// Condition is one scripted network disturbance. Windows are half-open
// [From, Until) in virtual real time. The zero value is invalid — every
// condition names a Kind.
type Condition struct {
	Kind string `json:"kind"`
	// From / Until bound the active window, [From, Until).
	From  simtime.Real `json:"from"`
	Until simtime.Real `json:"until"`
	// Nodes is the partitioned group, the churned set, or the jitter
	// scope (empty = all links; partition and churn require it).
	Nodes []protocol.NodeID `json:"nodes,omitempty"`
	// Jitter is the extra delay of a jitter window.
	Jitter simtime.Duration `json:"jitter,omitempty"`
}

// compiledCond is a Condition with membership resolved to an O(1) lookup.
type compiledCond struct {
	kind        string
	from, until simtime.Real
	member      []bool // indexed by NodeID; nil = every node
	jitter      simtime.Duration
}

func (c *compiledCond) active(at simtime.Real) bool {
	return at >= c.from && at < c.until
}

func (c *compiledCond) has(id protocol.NodeID) bool {
	return c.member == nil || (int(id) < len(c.member) && c.member[int(id)])
}

// compileConditions validates the schedule against the world size and
// resolves node sets to bitmaps.
func compileConditions(conds []Condition, n int) ([]compiledCond, error) {
	out := make([]compiledCond, 0, len(conds))
	for i, c := range conds {
		cc := compiledCond{kind: c.Kind, from: c.From, until: c.Until, jitter: c.Jitter}
		switch c.Kind {
		case CondPartition, CondChurn:
			if len(c.Nodes) == 0 {
				return nil, fmt.Errorf("simnet: condition %d (%s) needs a node set", i, c.Kind)
			}
		case CondJitter:
			if c.Jitter < 0 {
				return nil, fmt.Errorf("simnet: condition %d has negative jitter", i)
			}
		default:
			return nil, fmt.Errorf("simnet: condition %d has unknown kind %q", i, c.Kind)
		}
		if c.Until <= c.From {
			return nil, fmt.Errorf("simnet: condition %d window [%d,%d) is empty", i, c.From, c.Until)
		}
		if len(c.Nodes) > 0 {
			cc.member = make([]bool, n)
			for _, id := range c.Nodes {
				if id < 0 || int(id) >= n {
					return nil, fmt.Errorf("simnet: condition %d names node %d outside [0,%d)", i, id, n)
				}
				cc.member[int(id)] = true
			}
		}
		out = append(out, cc)
	}
	return out, nil
}

// applyConditions resolves the schedule for one message: the possibly
// jittered delay and whether an active partition or churn window eats the
// message. All windows are evaluated against deterministic instants — the
// send time (churn on the sender: a detached node cannot emit) and the
// UNjittered arrival instant (partitions, churn on the receiver, jitter
// scope) — so condition effects never feed back into their own window
// tests and replays are exact. Jitter accumulates across overlapping
// windows and is clamped into [DelayMin, DelayMax] at the end, keeping the
// run inside the paper's bounded-delay model.
func (w *World) applyConditions(from, to protocol.NodeID, delay simtime.Duration) (simtime.Duration, bool) {
	now := w.sch.Now()
	arrive := now + simtime.Real(delay)
	adjusted := delay
	for i := range w.conds {
		c := &w.conds[i]
		switch c.kind {
		case CondPartition:
			if c.active(arrive) && c.has(from) != c.has(to) {
				return delay, true
			}
		case CondChurn:
			if (c.has(from) && c.active(now)) || (c.has(to) && c.active(arrive)) {
				return delay, true
			}
		case CondJitter:
			if c.active(arrive) && (c.member == nil || c.has(from) || c.has(to)) {
				adjusted += c.jitter
			}
		}
	}
	return w.clampDelay(adjusted), false
}

// ConditionDrops returns how many sent messages the condition schedule has
// dropped so far (partition and churn windows). Dropped messages still
// count as sent in MessageCount — the sender paid for them; the network
// ate them. The counter is deterministic for a given (config, seed).
func (w *World) ConditionDrops() int64 { return w.condDrops }
