package simnet

import (
	"fmt"

	"ssbyz/internal/protocol"
	"ssbyz/internal/simtime"
)

// This file implements the network-condition schedule: a deterministic,
// declarative script of transport-level disturbances — timed partitions,
// per-link jitter windows, and node churn — applied at delivery time.
// Conditions are pure functions of (virtual time, endpoints): they consume
// no randomness and touch no scheduler state, so a world with an empty
// schedule is byte-identical to one built before this machinery existed
// (Config.LegacyConditions bypasses the code path entirely; the
// differential tests pin the two).
//
// Model-legality matters here. Jitter only stretches delays WITHIN the
// configured [DelayMin, DelayMax] (clamped), so a jittered run still
// satisfies the paper's bounded-delay axiom and every proved property must
// hold. Partitions and churn DROP messages, which suspends the delivery
// axiom for the affected links: the property battery stays sound only if
// drops are confined to links touching faulty nodes, or to windows outside
// any agreement's active span — the scenario generator enforces exactly
// that (DESIGN.md §6).

// Condition kinds. The string form is the JSON vocabulary of scenario
// specs.
const (
	// CondPartition splits the nodes into Nodes vs the rest for the
	// window: messages crossing between the two groups (either direction)
	// whose arrival falls inside the window are dropped.
	CondPartition = "partition"
	// CondJitter adds Jitter extra delay, clamped into the network's
	// [DelayMin, DelayMax], to messages whose unjittered arrival falls in
	// the window; an empty Nodes list hits every link, otherwise only
	// links with an endpoint in Nodes.
	CondJitter = "jitter"
	// CondChurn detaches Nodes from the network for the window — a NIC
	// crash with recovery: nothing they send while down leaves, nothing
	// arriving while they are down is delivered. Local timers keep
	// running (the node's state survives, as a recovering node's must).
	CondChurn = "churn"
)

// Wire-level condition kinds: attacks and WAN emulation that only exist
// below the message abstraction — they manipulate encoded frames, epochs,
// and socket timing, so only the live and virtual-time runtimes (which
// run the wire codec) can execute them. The simulator REJECTS them:
// simulated messages have no bytes to corrupt, no epoch to replay across,
// and no source address to forge, and silently ignoring an attack would
// make a "clean" sim report a lie. The nettrans chaos layer compiles them
// (internal/nettrans/chaos.go) and counts, per class, both the injections
// and the codec/transport defenses that fired.
const (
	// CondWAN emulates a geo-distributed deployment for the window: Groups
	// partitions (a subset of) the nodes into regions, Matrix[a][b] is the
	// extra one-way base delay in ticks from region a to region b
	// (asymmetric routes allowed), Jitter bounds a deterministic per-frame
	// jitter on top, and Rate, when positive, caps each directed link at
	// Rate frames per d window (excess frames are deferred to the next
	// window). All added delay is clamped so total scripted delay stays
	// within d/2 — WAN emulation is environment, not attack, and must keep
	// the run inside the paper's bounded-delay model (clamps are counted).
	CondWAN = "wan"
	// CondDuplicate re-sends every Stride-th frame Copies extra times —
	// the at-least-once pathology of datagram networks. The transport's
	// defense is receive-side exact-duplicate suppression within the d
	// window (DupDrops); the protocol state machines are idempotent under
	// identical re-delivery anyway, so this attack is legal on any link.
	CondDuplicate = "duplicate"
	// CondReorder holds every Stride-th frame back by Jitter ticks
	// (default d/2 at compile) without touching its send tick, forcing
	// delivery after later-sent frames. Reordering within the d bound is
	// absorbed by the event-driven protocol; a hold beyond d trips the
	// receiver's deadline drop — the bounded-delay axiom turns unbounded
	// reorder into plain loss.
	CondReorder = "reorder"
	// CondCorrupt flips one deterministic bit-pattern byte in every
	// Stride-th encoded frame leaving Nodes (the byte-level attacker on a
	// faulty node's NIC). Header hits are rejected by the codec's
	// magic/version/kind checks, payload hits by the message decoder's
	// bounds (DecodeDrops) — and a flip that still decodes is just an
	// arbitrary message from a faulty node, which the Byzantine model
	// already grants. Corrupting a correct node's frames would be message
	// loss on a correct link, so Nodes is required and the scenario
	// legality rule restricts it to faulty nodes.
	CondCorrupt = "corrupt"
	// CondReplay re-emits, on every Stride-th send by Nodes, an old
	// captured frame (≥ Lag ticks stale, default d+1 at compile) with its
	// ORIGINAL envelope — the recorded-traffic replay attack. With
	// CrossEpoch the replayed frame instead claims the next cluster
	// incarnation. Defenses, in pipeline order: the epoch check
	// (EpochDrops) for cross-incarnation frames, the d deadline
	// (LateDrops) for stale send ticks, and duplicate suppression
	// (DupDrops) for fresh-enough replays.
	CondReplay = "replay"
	// CondForge emits, on every Stride-th send by Nodes, an extra copy of
	// the frame claiming a DIFFERENT sender id — the identity-forgery
	// attack on the paper's "the receiver knows the sending node of every
	// message" assumption. The transport's source-address authentication
	// rejects it (AuthDrops): the bytes claim node v, the socket says
	// otherwise.
	CondForge = "forge"
)

// WireLevel reports whether kind only exists below the message
// abstraction (frames, epochs, source addresses) and therefore cannot run
// under the simulator.
func WireLevel(kind string) bool {
	switch kind {
	case CondWAN, CondDuplicate, CondReorder, CondCorrupt, CondReplay, CondForge:
		return true
	}
	return false
}

// Condition is one scripted network disturbance. Windows are half-open
// [From, Until) in virtual real time. The zero value is invalid — every
// condition names a Kind.
type Condition struct {
	Kind string `json:"kind"`
	// From / Until bound the active window, [From, Until).
	From  simtime.Real `json:"from"`
	Until simtime.Real `json:"until"`
	// Nodes is the partitioned group, the churned set, the jitter scope
	// (empty = all links; partition and churn require it), or — for the
	// wire-level attack kinds corrupt/replay/forge — the attacker set
	// whose outgoing frames are manipulated (required, and restricted to
	// faulty nodes by the scenario legality rule).
	Nodes []protocol.NodeID `json:"nodes,omitempty"`
	// Jitter is the extra delay of a jitter window, the per-frame jitter
	// bound of a wan window, or the hold delay of a reorder window.
	Jitter simtime.Duration `json:"jitter,omitempty"`
	// Groups are the wan regions: disjoint node sets (nodes in no group
	// see no base delay). Only CondWAN uses it.
	Groups [][]protocol.NodeID `json:"groups,omitempty"`
	// Matrix is the wan base-delay matrix in ticks: Matrix[a][b] is added
	// to frames from region a to region b. Must be len(Groups)² and
	// non-negative. Only CondWAN uses it.
	Matrix [][]simtime.Duration `json:"matrix,omitempty"`
	// Rate, when positive, caps each directed link at Rate frames per d
	// window inside a wan window; excess frames defer to the next window.
	Rate int `json:"rate,omitempty"`
	// Stride makes an attack kind act on every Stride-th frame of a link
	// (0 and 1 mean every frame).
	Stride int `json:"stride,omitempty"`
	// Copies is the number of extra copies a duplicate window emits
	// (0 means 1).
	Copies int `json:"copies,omitempty"`
	// Lag is the minimum staleness in ticks of the frame a replay window
	// re-emits (0 means d+1 at compile: stale enough to trip the deadline
	// drop).
	Lag simtime.Duration `json:"lag,omitempty"`
	// CrossEpoch makes a replay window claim the next cluster incarnation
	// instead of re-emitting a stale frame of this one.
	CrossEpoch bool `json:"cross_epoch,omitempty"`
}

// compiledCond is a Condition with membership resolved to an O(1) lookup.
type compiledCond struct {
	kind        string
	from, until simtime.Real
	member      []bool // indexed by NodeID; nil = every node
	jitter      simtime.Duration
}

func (c *compiledCond) active(at simtime.Real) bool {
	return at >= c.from && at < c.until
}

func (c *compiledCond) has(id protocol.NodeID) bool {
	return c.member == nil || (int(id) < len(c.member) && c.member[int(id)])
}

// ValidateCondition structurally validates one condition against the
// cluster size. live selects the vocabulary: the wire-level attack kinds
// only pass when live is true (the simulator has no bytes to attack).
// Legality — which nodes an attack may name — is the scenario engine's
// job; this check is purely structural.
func ValidateCondition(i int, c Condition, n int, live bool) error {
	switch c.Kind {
	case CondPartition, CondChurn:
		if len(c.Nodes) == 0 {
			return fmt.Errorf("condition %d (%s) needs a node set", i, c.Kind)
		}
	case CondJitter:
		if c.Jitter < 0 {
			return fmt.Errorf("condition %d has negative jitter", i)
		}
	case CondWAN, CondDuplicate, CondReorder, CondCorrupt, CondReplay, CondForge:
		if !live {
			return fmt.Errorf("condition %d kind %q is wire-level — live/virtual runtimes only (the simulator has no frames to attack)", i, c.Kind)
		}
		if err := validateWireCondition(i, c, n); err != nil {
			return err
		}
	default:
		return fmt.Errorf("condition %d has unknown kind %q", i, c.Kind)
	}
	if c.Until <= c.From {
		return fmt.Errorf("condition %d window [%d,%d) is empty", i, c.From, c.Until)
	}
	for _, id := range c.Nodes {
		if id < 0 || int(id) >= n {
			return fmt.Errorf("condition %d names node %d outside [0,%d)", i, id, n)
		}
	}
	return nil
}

// validateWireCondition checks the attack-specific fields of a
// wire-level condition.
func validateWireCondition(i int, c Condition, n int) error {
	if c.Stride < 0 || c.Copies < 0 || c.Rate < 0 || c.Lag < 0 || c.Jitter < 0 {
		return fmt.Errorf("condition %d (%s) has a negative field", i, c.Kind)
	}
	switch c.Kind {
	case CondWAN:
		if len(c.Groups) == 0 {
			return fmt.Errorf("condition %d (wan) needs regions in Groups", i)
		}
		seen := make([]bool, n)
		for gi, grp := range c.Groups {
			if len(grp) == 0 {
				return fmt.Errorf("condition %d (wan) region %d is empty", i, gi)
			}
			for _, id := range grp {
				if id < 0 || int(id) >= n {
					return fmt.Errorf("condition %d (wan) region %d names node %d outside [0,%d)", i, gi, id, n)
				}
				if seen[id] {
					return fmt.Errorf("condition %d (wan) places node %d in two regions", i, id)
				}
				seen[id] = true
			}
		}
		if len(c.Matrix) != len(c.Groups) {
			return fmt.Errorf("condition %d (wan) matrix is %d×? for %d regions", i, len(c.Matrix), len(c.Groups))
		}
		for a, row := range c.Matrix {
			if len(row) != len(c.Groups) {
				return fmt.Errorf("condition %d (wan) matrix row %d has %d entries for %d regions", i, a, len(row), len(c.Groups))
			}
			for b, d := range row {
				if d < 0 {
					return fmt.Errorf("condition %d (wan) matrix[%d][%d] is negative", i, a, b)
				}
			}
		}
	case CondDuplicate:
		if c.Copies > 8 {
			return fmt.Errorf("condition %d (duplicate) emits %d copies, max 8", i, c.Copies)
		}
	case CondCorrupt, CondReplay, CondForge:
		if len(c.Nodes) == 0 {
			return fmt.Errorf("condition %d (%s) needs an attacker node set", i, c.Kind)
		}
	}
	return nil
}

// compileConditions validates the schedule against the world size and
// resolves node sets to bitmaps. The wire-level attack kinds are
// rejected here: a simulated message has no bytes, epoch, or source
// address, and silently skipping an attack would falsify the report.
func compileConditions(conds []Condition, n int) ([]compiledCond, error) {
	out := make([]compiledCond, 0, len(conds))
	for i, c := range conds {
		if err := ValidateCondition(i, c, n, false); err != nil {
			return nil, fmt.Errorf("simnet: %w", err)
		}
		cc := compiledCond{kind: c.Kind, from: c.From, until: c.Until, jitter: c.Jitter}
		if len(c.Nodes) > 0 {
			cc.member = make([]bool, n)
			for _, id := range c.Nodes {
				cc.member[int(id)] = true
			}
		}
		out = append(out, cc)
	}
	return out, nil
}

// applyConditions resolves the schedule for one message: the possibly
// jittered delay and whether an active partition or churn window eats the
// message. All windows are evaluated against deterministic instants — the
// send time (churn on the sender: a detached node cannot emit) and the
// UNjittered arrival instant (partitions, churn on the receiver, jitter
// scope) — so condition effects never feed back into their own window
// tests and replays are exact. Jitter accumulates across overlapping
// windows and is clamped into [DelayMin, DelayMax] at the end, keeping the
// run inside the paper's bounded-delay model.
func (w *World) applyConditions(from, to protocol.NodeID, delay simtime.Duration) (simtime.Duration, bool) {
	now := w.sch.Now()
	arrive := now + simtime.Real(delay)
	adjusted := delay
	for i := range w.conds {
		c := &w.conds[i]
		switch c.kind {
		case CondPartition:
			if c.active(arrive) && c.has(from) != c.has(to) {
				return delay, true
			}
		case CondChurn:
			if (c.has(from) && c.active(now)) || (c.has(to) && c.active(arrive)) {
				return delay, true
			}
		case CondJitter:
			if c.active(arrive) && (c.member == nil || c.has(from) || c.has(to)) {
				adjusted += c.jitter
			}
		}
	}
	return w.clampDelay(adjusted), false
}

// ConditionDrops returns how many sent messages the condition schedule has
// dropped so far (partition and churn windows). Dropped messages still
// count as sent in MessageCount — the sender paid for them; the network
// ate them. The counter is deterministic for a given (config, seed).
func (w *World) ConditionDrops() int64 { return w.condDrops }
