package simnet

import (
	"testing"

	"ssbyz/internal/protocol"
	"ssbyz/internal/simtime"
)

// benchFanout drives one node's Broadcast through the transport with no
// attached nodes (deliveries dispatch to nil and return), isolating the
// fan-out + scheduler cost of the two delivery paths.
func benchFanout(b *testing.B, legacy bool, dmin, dmax simtime.Duration) {
	pp := protocol.DefaultParams(64)
	w, err := New(Config{Params: pp, Seed: 1, DelayMin: dmin, DelayMax: dmax, LegacyFanout: legacy})
	if err != nil {
		b.Fatal(err)
	}
	rt := w.rts[0]
	m := protocol.Message{Kind: protocol.Echo, G: 0, M: "v", P: 1, K: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Broadcast(m)
		w.RunUntil(w.Now() + simtime.Real(dmax) + 1)
	}
}

// BenchmarkBroadcastFanout compares the batched per-tick delivery path
// against the legacy per-recipient one at n = 64. "narrow" is a
// deterministic-delay network (every recipient shares one arrival tick:
// the batch win is n×); "wide" is the standard δ ∈ [d/2, d] spread, where
// recipients scatter across ~d/2 ticks and the adaptive cutover
// (simnet.World.useBatch) routes broadcasts down the per-recipient path —
// the two "wide" numbers must therefore be statistically identical.
func BenchmarkBroadcastFanout(b *testing.B) {
	pp := protocol.DefaultParams(64)
	b.Run("batched/narrow", func(b *testing.B) { benchFanout(b, false, 5, 5) })
	b.Run("legacy/narrow", func(b *testing.B) { benchFanout(b, true, 5, 5) })
	b.Run("batched/wide", func(b *testing.B) { benchFanout(b, false, pp.D/2, pp.D) })
	b.Run("legacy/wide", func(b *testing.B) { benchFanout(b, true, pp.D/2, pp.D) })
}
