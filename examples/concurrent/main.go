// Concurrent invocations: the paper's footnote-9 extension. A correct
// General normally spaces its initiations by Δ0 = 13d (criterion IG1);
// indexing lets one General run several agreements at the same instant,
// one per slot, each with its own rate-limit state — "adding counters to
// concurrent agreement initiations".
//
// Run with: go run ./examples/concurrent
package main

import (
	"fmt"
	"log"

	"ssbyz"
)

func main() {
	sim, err := ssbyz.NewSimulation(ssbyz.Config{N: 7, Seed: 33})
	if err != nil {
		log.Fatal(err)
	}
	pp := sim.Params()

	// Three agreements by the SAME General at the SAME instant — refused
	// under plain IG1, legal across indexed slots.
	const slots = 3
	sim.WithConcurrentSlots(slots)
	t0 := 2 * pp.D
	values := []ssbyz.Value{"shard-a", "shard-b", "shard-c"}
	for slot, v := range values {
		sim.ScheduleSlotAgreement(slot, 0, v, t0)
	}

	report, err := sim.Run(3 * pp.DeltaAgr())
	if err != nil {
		log.Fatal(err)
	}
	if errs := report.InitiationErrors(); len(errs) != 0 {
		log.Fatalf("initiations refused: %v", errs)
	}

	for slot, want := range values {
		decs := report.SlotDecisions(0, slot)
		if len(decs) != pp.N {
			log.Fatalf("slot %d: %d/%d nodes decided", slot, len(decs), pp.N)
		}
		var last int64
		for _, d := range decs {
			if d.Value != want {
				log.Fatalf("slot %d: node %d decided %q, want %q", slot, d.Node, d.Value, want)
			}
			if int64(d.RT) > last {
				last = int64(d.RT)
			}
		}
		fmt.Printf("slot %d: all %d nodes decided %q by t=%d (%.2fd after initiation)\n",
			slot, pp.N, want, last, float64(last-int64(t0))/float64(pp.D))
	}
	fmt.Println("\nthree concurrent agreements by one General, all within the validity window ✓")
}
