// Agreement as a service: the replicated-log facade (DESIGN.md §8). A
// General serves a total-order log — client proposals arrive open-loop,
// a bounded queue sheds excess (IG1 admits one invocation per Δ0 = 13d
// per session slot), and entries drain through concurrent footnote-9
// sessions. The committed order is the decision-anchor order rt(τG),
// which IA-1C synchronizes across correct nodes to within d, so every
// correct observer reconstructs the same log.
//
// Run with: go run ./examples/service
package main

import (
	"fmt"
	"log"

	"ssbyz"
)

func main() {
	eng, err := ssbyz.New(ssbyz.WithN(7), ssbyz.WithSessions(4), ssbyz.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	pp := eng.Params()

	// General 0 serves the log: one scripted genesis entry, then a burst
	// of Poisson client traffic faster than a single session could admit.
	lg, err := eng.Log(0)
	if err != nil {
		log.Fatal(err)
	}
	if err := lg.ProposeAt("genesis", pp.D); err != nil {
		log.Fatal(err)
	}
	if err := lg.GenerateTraffic(ssbyz.Traffic{
		Seed: 5, Start: 2 * pp.D, MeanGap: 4 * pp.D, Count: 10,
	}); err != nil {
		log.Fatal(err)
	}

	report, err := eng.Run(0)
	if err != nil {
		log.Fatal(err)
	}
	lr := report.Log(0)
	st := lr.Stats()
	fmt.Printf("proposed %d entries: %d committed, %d shed, %d failed\n",
		st.Proposed, st.Committed, st.Dropped, st.Failed)

	fmt.Println("\nthe log, in its anchor-ordered total order:")
	for _, e := range lr.Committed() {
		fmt.Printf("  #%d %-8q arrived t=%-6d committed t=%-6d (%.1fd latency)\n",
			e.Index, e.Payload, e.ArrivedAt, e.CommittedAt,
			float64(e.CommittedAt-e.ArrivedAt)/float64(pp.D))
	}

	if vs := report.CheckService(); len(vs) != 0 {
		log.Fatalf("property violations: %v", vs)
	}
	fmt.Println("\nper-session battery clean: Agreement, Timeliness, IA bounds, and every entry's Validity window hold ✓")
}
