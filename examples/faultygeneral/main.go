// Faulty General: an equivocating General sends the values "a" and "b" to
// different halves of the network, amplified by a colluding Byzantine
// node. The Agreement property guarantees all-or-none: either every
// correct node decides the same single value, or every correct node
// aborts — never a split.
//
// Run with: go run ./examples/faultygeneral
package main

import (
	"fmt"
	"log"

	"ssbyz"
)

func main() {
	splitsSeen := 0
	for seed := int64(0); seed < 10; seed++ {
		sim, err := ssbyz.NewSimulation(ssbyz.Config{N: 7, Seed: seed})
		if err != nil {
			log.Fatal(err)
		}
		pp := sim.Params()

		// Node 0 is a Byzantine General equivocating between two values;
		// node 6 colludes by amplifying every wave it sees.
		sim.WithFaulty(0, ssbyz.EquivocatingGeneral(2*pp.D, "a", "b"))
		sim.WithFaulty(6, ssbyz.Colluder())

		report, err := sim.Run(5 * pp.DeltaAgr())
		if err != nil {
			log.Fatal(err)
		}

		values := map[ssbyz.Value]int{}
		aborts := 0
		for _, d := range report.Decisions(0) {
			if d.Decided {
				values[d.Value]++
			} else {
				aborts++
			}
		}
		fmt.Printf("seed %2d: decides=%v aborts=%d", seed, values, aborts)
		switch {
		case len(values) > 1:
			fmt.Print("  ← VALUE SPLIT (impossible for a correct build)")
			splitsSeen++
		case len(values) == 1:
			fmt.Print("  → all-decide outcome")
		default:
			fmt.Print("  → all-abort outcome (allowed for a faulty General)")
		}
		fmt.Println()

		if vs := report.Check(0); len(vs) > 0 {
			log.Fatalf("seed %d: property violations: %v", seed, vs)
		}
	}
	if splitsSeen > 0 {
		log.Fatalf("%d value splits observed", splitsSeen)
	}
	fmt.Println("\nno value splits across all seeds — Agreement holds under equivocation ✓")
}
