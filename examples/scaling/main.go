// Scaling: the docs-first entry point for the S1 large-n workload.
//
// The paper's protocol costs O(n²) messages per msgd-broadcast instance,
// and a fault-free agreement runs one instance per decider — Θ(n³)
// messages total — so committee size is the axis along which simulation
// cost explodes. This example runs the S1 head-to-head (ss-Byz-Agree vs
// the Toueg–Perry–Srikanth 1987 time-driven baseline) at ONE committee
// size and prints the latency / message-count table, plus the wall-clock
// cost of producing it on this machine.
//
// Reading the table (full model in DESIGN.md §5):
//
//   - "ours lat (d)" stays near the actual δ (here δ ∈ [d/2, d], so
//     ≈ 3.2d) no matter how large n grows — rounds, not size, bound the
//     latency, and the message-driven rounds finish at network speed.
//   - "base lat (d)" is pinned near whole Φ = 8d rounds (≈ 16.8d): the
//     baseline is time-driven and cannot profit from a fast network.
//   - "ours msgs/n²" grows ≈ 3n, making the Θ(n³) per-agreement total
//     visible; "events" is the deterministic discrete-event count, the
//     machine-independent cost proxy the suite records.
//
// Run with: go run ./examples/scaling [-n 64] [-seeds 3]
//
// The full sweep over n ∈ {4, 7, 16, 31, 64, 128} is experiment S1 in
// `go run ./cmd/ssbyz-bench -quick` (256 without -quick).
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"ssbyz/internal/harness"
)

func main() {
	n := flag.Int("n", 64, "committee size (f = ⌊(n−1)/3⌋ tolerated faults)")
	seeds := flag.Int("seeds", 3, "randomized repetitions")
	flag.Parse()
	if *n < 4 {
		log.Fatal("scaling: need n ≥ 4 (n > 3f with f ≥ 1)")
	}

	fmt.Printf("S1 at n=%d: %d fault-free agreements of ss-Byz-Agree vs the TPS-87 baseline, δ ∈ [d/2, d]\n\n",
		*n, *seeds)
	start := time.Now()
	table, violations, _ := harness.ScalingTable(harness.Options{Seeds: *seeds}, []int{*n})
	elapsed := time.Since(start)

	fmt.Print(table.String())
	fmt.Printf("\nwall-clock: %v for %d simulated agreements of each protocol (%v per ss-Byz-Agree run incl. checks)\n",
		elapsed.Round(time.Millisecond), *seeds, (elapsed / time.Duration(2**seeds)).Round(time.Millisecond))
	if violations != 0 {
		log.Fatalf("scaling: %d property violations — a faithful build reports zero", violations)
	}
	fmt.Println("all paper bounds verified at this scale ✓")
}
