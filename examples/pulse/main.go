// Pulse synchronization: the companion layer built on top of ss-Byz-Agree.
// Correct nodes fire recurring pulses; once stable, every cycle's pulses
// land within the agreement's 3d decision skew of each other — a
// self-stabilizing Byzantine "heartbeat" that can clock any classic
// synchronous algorithm. Two Byzantine nodes sit in the General rotation
// and are routed around by the fallback.
//
// Run with: go run ./examples/pulse
package main

import (
	"fmt"
	"log"
	"sort"

	"ssbyz"
)

func main() {
	sim, err := ssbyz.NewSimulation(ssbyz.Config{N: 7, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	pp := sim.Params()

	// All correct nodes run the pulse layer; nodes 0 and 1 are faulty
	// (crashed), so the first two cycle-Generals never initiate and the
	// fallback rotation must cover for them.
	sim.WithPulseSynchronization(0) // 0 = minimum legal cycle length
	sim.WithFaulty(0, ssbyz.Crashed())
	sim.WithFaulty(1, ssbyz.Crashed())

	report, err := sim.Run(10 * (pp.Delta0() + 3*pp.DeltaAgr()))
	if err != nil {
		log.Fatal(err)
	}

	byCycle := report.Pulses()
	if len(byCycle) == 0 {
		log.Fatal("no pulses fired")
	}
	cycles := make([]int, 0, len(byCycle))
	for k := range byCycle {
		cycles = append(cycles, k)
	}
	sort.Ints(cycles)

	fmt.Printf("cycle  nodes  skew(ticks)  skew/d   (bound 3d, d=%d)\n", pp.D)
	for _, k := range cycles {
		pulses := byCycle[k]
		lo, hi := pulses[0].RT, pulses[0].RT
		for _, p := range pulses {
			if p.RT < lo {
				lo = p.RT
			}
			if p.RT > hi {
				hi = p.RT
			}
		}
		skew := int64(hi - lo)
		fmt.Printf("%5d  %5d  %11d  %6.2f\n", k, len(pulses), skew, float64(skew)/float64(pp.D))
		if len(pulses) == 5 && skew > 3*int64(pp.D) {
			log.Fatalf("cycle %d: pulse skew %d exceeds the 3d bound", k, skew)
		}
	}
	fmt.Println("\nall complete cycles within the 3d skew bound ✓")
}
