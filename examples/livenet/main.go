// Live transports: the same protocol state machines running in real
// time, twice — first over in-process channels (LiveCluster), then over
// REAL loopback UDP sockets (SocketCluster), where every message crosses
// the kernel through the binary wire codec, the sender is authenticated
// by source address, and the paper's bounded-delay axiom is enforced by
// deadline drops. The socket form is the single-process version of the
// cmd/ssbyz-node daemon topology (see README "Running a real cluster").
//
// Run with: go run ./examples/livenet
package main

import (
	"fmt"
	"log"
	"time"

	"ssbyz"
)

func main() {
	// ---- in-process channels ----
	// d = 50 ticks × 100µs = 5ms; a full agreement bound Δagr at f=1 is
	// (2·1+1)·8d = 120ms of wall time.
	cluster, err := ssbyz.NewLiveCluster(ssbyz.LiveConfig{N: 4, D: 50, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()
	pp := cluster.Params()
	fmt.Printf("live cluster (channels): n=%d f=%d d=%d ticks (≈%v wall)\n", pp.N, pp.F, pp.D, 5*time.Millisecond)

	for i, v := range []ssbyz.Value{"config-v1", "config-v2"} {
		g := ssbyz.NodeID(i % pp.N)
		start := time.Now()
		if err := cluster.Initiate(g, v); err != nil {
			log.Fatalf("initiate %q at node %d: %v", v, g, err)
		}
		decided, err := cluster.Await(g, 10*time.Second)
		if err != nil {
			log.Fatalf("await %q: %v", v, err)
		}
		fmt.Printf("general %d: all nodes decided %q in %v\n", g, decided, time.Since(start).Round(time.Millisecond))

		// Respect IG1: a correct General spaces initiations by Δ0 = 13d.
		time.Sleep(15 * 5 * time.Millisecond)
	}

	// ---- real sockets ----
	// Same protocol, but now each node owns a loopback UDP socket: every
	// message is serialized, authenticated, and subject to the transport's
	// d deadline (frames older than d = 10ms are dropped as the model
	// demands). Swap "udp" for "tcp" to see the lossless stream baseline.
	socks, err := ssbyz.NewSocketCluster(ssbyz.SocketConfig{N: 4, D: 100, Transport: "udp"})
	if err != nil {
		log.Fatal(err)
	}
	defer socks.Stop()
	spp := socks.Params()
	fmt.Printf("socket cluster (loopback UDP): n=%d f=%d d=%d ticks (≈%v wall)\n",
		spp.N, spp.F, spp.D, 10*time.Millisecond)

	start := time.Now()
	if err := socks.Initiate(1, "over-the-wire"); err != nil {
		log.Fatalf("socket initiate: %v", err)
	}
	decided, err := socks.Await(1, 10*time.Second)
	if err != nil {
		log.Fatalf("socket await: %v", err)
	}
	fmt.Printf("general 1: all nodes decided %q over real sockets in %v\n",
		decided, time.Since(start).Round(time.Millisecond))

	// The collected trace passes the full property battery — the same
	// checkers the simulator uses, now judging real network behaviour.
	if vs := socks.Check(); len(vs) != 0 {
		log.Fatalf("battery violations over the socket trace: %v", vs)
	}
	fmt.Println("socket trace checked: every paper bound holds ✓")
}
