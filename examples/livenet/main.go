// Live transport: the same protocol state machines running in real time —
// one goroutine per node, in-process channels with randomized wall-clock
// delays. This is the configuration a service embedding the library would
// start from (swap the in-process channels for sockets behind the same
// Runtime interface).
//
// Run with: go run ./examples/livenet
package main

import (
	"fmt"
	"log"
	"time"

	"ssbyz"
)

func main() {
	// d = 50 ticks × 100µs = 5ms; a full agreement bound Δagr at f=1 is
	// (2·1+1)·8d = 120ms of wall time.
	cluster, err := ssbyz.NewLiveCluster(ssbyz.LiveConfig{N: 4, D: 50, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()
	pp := cluster.Params()
	fmt.Printf("live cluster: n=%d f=%d d=%d ticks (≈%v wall)\n", pp.N, pp.F, pp.D, 5*time.Millisecond)

	for i, v := range []ssbyz.Value{"config-v1", "config-v2", "config-v3"} {
		g := ssbyz.NodeID(i % pp.N)
		start := time.Now()
		if err := cluster.Initiate(g, v); err != nil {
			log.Fatalf("initiate %q at node %d: %v", v, g, err)
		}
		decided, err := cluster.Await(g, 10*time.Second)
		if err != nil {
			log.Fatalf("await %q: %v", v, err)
		}
		fmt.Printf("general %d: all nodes decided %q in %v\n", g, decided, time.Since(start).Round(time.Millisecond))

		// Respect IG1: a correct General spaces initiations by Δ0 = 13d.
		time.Sleep(15 * 5 * time.Millisecond)
	}
	fmt.Println("three live agreements complete ✓")
}
