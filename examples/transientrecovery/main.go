// Transient recovery: the self-stabilization demo. At t = 0 every node's
// entire protocol state is corrupted to arbitrary garbage (i_values,
// rate-limit variables, ready flags, message logs, phantom anchors,
// "already returned" control states, spurious in-flight messages). A
// correct General then initiates agreements periodically; the run shows
// the early ones failing or being refused and, within Δstb = 2Δreset of
// coherence, the system converging to fully verified agreements.
//
// Run with: go run ./examples/transientrecovery
package main

import (
	"fmt"
	"log"

	"ssbyz"
)

func main() {
	sim, err := ssbyz.NewSimulation(ssbyz.Config{N: 7, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	pp := sim.Params()
	fmt.Printf("Δ0=%d Δrmv=%d Δreset=%d Δstb=%d (all ticks, d=%d)\n\n",
		pp.Delta0(), pp.DeltaRmv(), pp.DeltaReset(), pp.DeltaStb(), pp.D)

	// Corrupt everything at the moment the network becomes coherent.
	sim.WithTransientFault(1234, 1.0)

	// The General retries a fresh value every Δ0 + 2d.
	spacing := pp.Delta0() + 2*pp.D
	var at ssbyz.Ticks
	values := []ssbyz.Value{}
	for i := 0; at < pp.DeltaStb()+4*pp.DeltaAgr(); i++ {
		v := ssbyz.Value(fmt.Sprintf("attempt-%d", i))
		values = append(values, v)
		sim.ScheduleAgreement(0, v, at)
		at += spacing
	}

	report, err := sim.Run(at + 3*pp.DeltaAgr())
	if err != nil {
		log.Fatal(err)
	}

	refused := report.InitiationErrors()
	firstVerified := -1
	for i, v := range values {
		t0 := ssbyz.Ticks(i) * spacing
		status := "no verified agreement"
		if _, r := refused[i]; r {
			status = "refused by sending-validity criteria (IG1–IG3)"
		} else if report.Verified(0, v, t0) {
			status = "agreed within [t0−d, t0+4d] ✓"
			if firstVerified < 0 {
				firstVerified = i
			}
		} else if len(report.DecisionsFor(0, v)) > 0 {
			status = fmt.Sprintf("partial: %d nodes decided", len(report.DecisionsFor(0, v)))
		}
		// Print the interesting prefix: everything until two past the
		// first verified agreement.
		if firstVerified < 0 || i <= firstVerified+2 {
			fmt.Printf("t=%7d (%5.2f·Δstb)  %-12s %s\n",
				t0, float64(t0)/float64(pp.DeltaStb()), v, status)
		}
	}

	if firstVerified < 0 {
		log.Fatal("system never converged — self-stabilization failed")
	}
	conv := ssbyz.Ticks(firstVerified) * spacing
	fmt.Printf("\nfirst fully-verified agreement at t=%d = %.2f·Δstb after coherence\n",
		conv, float64(conv)/float64(pp.DeltaStb()))
	if conv > pp.DeltaStb() {
		log.Fatal("convergence exceeded the Δstb bound")
	}
	fmt.Println("convergence within Δstb ✓")
}
