// Quickstart: one agreement among 7 simulated nodes with a correct
// General, verified against the paper's Validity and Timeliness bounds.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ssbyz"
)

func main() {
	// 7 nodes tolerate f = 2 Byzantine faults (n > 3f).
	sim, err := ssbyz.NewSimulation(ssbyz.Config{N: 7, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	pp := sim.Params()
	fmt.Printf("n=%d f=%d d=%d ticks  (Φ=%d Δagr=%d)\n", pp.N, pp.F, pp.D, pp.Phi(), pp.DeltaAgr())

	// Node 0, as the General, initiates agreement on "launch" at t = 2d.
	t0 := 2 * pp.D
	sim.ScheduleAgreement(0, "launch", t0)

	report, err := sim.Run(0)
	if err != nil {
		log.Fatal(err)
	}

	// Every correct node decides the General's value within [t0−d, t0+4d].
	for _, d := range report.Decisions(0) {
		fmt.Printf("node %d decided %q at t=%d (%.2fd after initiation)\n",
			d.Node, d.Value, d.RT, float64(int64(d.RT)-int64(t0))/float64(pp.D))
	}
	if !report.Unanimous(0, "launch") {
		log.Fatal("agreement failed — this should be impossible with a correct General")
	}

	// The library ships machine-checkable versions of every proved bound.
	if vs := report.CheckValidity(0, t0, "launch"); len(vs) > 0 {
		log.Fatalf("validity violations: %v", vs)
	}
	if vs := report.Check(0); len(vs) > 0 {
		log.Fatalf("property violations: %v", vs)
	}
	fmt.Println("all paper bounds verified ✓")
}
