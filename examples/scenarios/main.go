// Scenarios: the docs-first walkthrough of the scenario engine — the
// subsystem that turns the property checkers from a regression suite into
// an adversarial SEARCH over the space the paper's proofs quantify over
// (every Byzantine strategy, every arrival pattern the bounded-delay
// model admits).
//
// The walkthrough has three acts, mirroring how the S2 experiment works:
//
//  1. A hand-written scenario: a composite adversary (equivocating
//     General that also colludes late) plus scripted network conditions
//     (a jitter burst, then a partition isolating the faulty node), run
//     against the full property battery.
//  2. A seeded random campaign: generated scenarios, every one checked.
//  3. The counterexample loop: a deliberately weakened checker "finds" a
//     violation, the shrinker minimizes the scenario to its essence, and
//     the minimized spec round-trips through JSON — the exact artifact
//     `ssbyz-bench -replay spec.json` consumes.
//
// Run with: go run ./examples/scenarios
//
// The full campaign is experiment S2 in `go run ./cmd/ssbyz-bench -quick`
// (thousands of scenarios without -quick); DESIGN.md §6 documents the
// spec schema and the model-legality rules the generator obeys.
package main

import (
	"fmt"
	"log"

	"ssbyz"
)

func main() {
	handWritten()
	campaign()
	counterexampleLoop()
}

// handWritten composes adversaries and scripts network conditions.
func handWritten() {
	fmt.Println("== 1. composite adversary + network conditions ==")
	pp := ssbyz.GenerateScenario(0, 7).Params() // n=7 constants (d, f, Δagr)
	d := ssbyz.Time(pp.D)
	sp := ssbyz.Scenario{
		N:    7,
		Seed: 42,
		// One faulty node playing two roles at once: an equivocating
		// General (the IA-4 uniqueness attack) that simultaneously
		// colludes with every observed wave (late-supporter style).
		Adversaries: []ssbyz.ScenarioAdversary{{
			Node: 5,
			Kind: "compose",
			Parts: []ssbyz.ScenarioAdversary{
				{Kind: "equivocator", Values: []ssbyz.Value{"left", "right"}, At: 3 * pp.D},
				{Kind: "yeasayer"},
			},
		}},
		Conditions: []ssbyz.NetworkCondition{
			// A jitter burst over every link while the attack unfolds —
			// legal: delays stay within [DelayMin, DelayMax] ≤ d.
			{Kind: ssbyz.ConditionJitter, From: 2 * d, Until: 9 * d, Jitter: pp.D / 2},
			// Then the network drops the traitor's packets for a while —
			// also legal: silencing an adversary is just more adversary.
			{Kind: ssbyz.ConditionPartition, From: 9 * d, Until: 14 * d, Nodes: []ssbyz.NodeID{5}},
		},
		// The General script: a correct agreement runs concurrently with
		// the attack.
		Script: []ssbyz.ScenarioInitiation{{At: 2 * d, G: 0, Value: "launch"}},
	}
	rep, err := ssbyz.RunScenario(sp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("correct decide returns for G0/%q: %d of %d correct nodes\n",
		"launch", len(rep.Report.DecisionsFor(0, "launch")), 6)
	fmt.Printf("property violations: %d (the paper's bounds hold under the combined attack)\n\n",
		len(rep.Violations))
}

// campaign samples the scenario space the way experiment S2 does.
func campaign() {
	fmt.Println("== 2. seeded random campaign ==")
	violations := 0
	for seed := int64(0); seed < 25; seed++ {
		sp := ssbyz.GenerateScenario(seed, 7)
		rep, err := ssbyz.RunScenario(sp)
		if err != nil {
			log.Fatalf("seed %d: %v", seed, err)
		}
		violations += len(rep.Violations)
	}
	fmt.Printf("25 generated scenarios checked, %d violations\n", violations)
	fmt.Println("(each spec is a pure function of its seed — re-running reproduces every run exactly)")
	fmt.Println()
	if violations != 0 {
		log.Fatal("scenarios: a faithful build reports zero violations")
	}
}

// counterexampleLoop demonstrates minimize + replay with a deliberately
// weakened checker (a faithful build yields no real counterexamples, so
// we manufacture a "failure": the paper bounds decision skew by 3d —
// pretending the bound were 0 makes any real run fail).
func counterexampleLoop() {
	fmt.Println("== 3. weakened checker -> minimized, replayable counterexample ==")
	zeroSkew := func(sp ssbyz.Scenario) bool {
		rep, err := ssbyz.RunScenario(sp)
		if err != nil {
			return false
		}
		for _, init := range sp.Script {
			decs := rep.Report.DecisionsFor(init.G, init.Value)
			for _, d := range decs {
				if d.RT != decs[0].RT {
					return true // nonzero skew: "violates" the fake 0d bound
				}
			}
		}
		return false
	}
	var found *ssbyz.Scenario
	for seed := int64(0); seed < 20; seed++ {
		sp := ssbyz.GenerateScenario(seed, 7)
		if zeroSkew(sp) {
			found = &sp
			break
		}
	}
	if found == nil {
		log.Fatal("scenarios: no generated spec tripped the weakened checker")
	}
	min := ssbyz.MinimizeScenario(*found, zeroSkew)
	fmt.Printf("minimized: %d adversaries, %d conditions, %d initiations (from %d/%d/%d)\n",
		len(min.Adversaries), len(min.Conditions), len(min.Script),
		len(found.Adversaries), len(found.Conditions), len(found.Script))
	blob := min.Marshal()
	fmt.Printf("replayable spec (%d bytes of JSON) — feed it to `ssbyz-bench -replay`:\n%s", len(blob), blob)
	rep, err := ssbyz.ReplayScenario(blob)
	if err != nil {
		log.Fatal(err)
	}
	if !zeroSkew(rep.Spec) {
		log.Fatal("scenarios: replay did not reproduce the failure")
	}
	fmt.Println("replay reproduced the exact failure ✓")
}
