// Package ssbyz is a from-scratch Go reproduction of "Self-stabilizing
// Byzantine Agreement" (Daliot & Dolev, PODC 2006): the ss-Byz-Agree
// protocol, its Initiator-Accept and msgd-broadcast building blocks, the
// Toueg–Perry–Srikanth (1987) time-driven baseline it improves on, a pulse
// synchronization layer built on top, and the simulation substrate that
// makes every proved bound of the paper measurable.
//
// The package offers two ways to run the protocol:
//
//   - Simulation: a deterministic discrete-event world with per-node
//     drifting clocks and adversarial message timing, where virtual real
//     time and each node's local reading are both observable — this is
//     how the paper's Timeliness/IA/TPS bounds are verified exactly.
//
//   - Live: a goroutine-per-node transport over in-process channels with
//     wall-clock delays, for embedding the protocol in real services.
//
// Both runtimes are driven through one service-oriented entry point, the
// Engine: agreement sessions (individual invocations, concurrent per
// footnote 9) and replicated logs (ordered client proposals, each
// committed through one agreement) are opened as handles on it.
//
// Quickstart (one agreement, simulated):
//
//	eng, _ := ssbyz.New(ssbyz.WithN(7))
//	s, _ := eng.OpenSession(0)
//	s.ProposeAt("launch", 2*eng.Params().D)
//	report, _ := eng.Run(0)
//	for _, d := range report.Decisions(0) { fmt.Println(d.Node, d.Value) }
//
// Quickstart (replicated log under Poisson client load):
//
//	eng, _ := ssbyz.New(ssbyz.WithN(7), ssbyz.WithSessions(4))
//	log, _ := eng.Log(0)
//	log.GenerateTraffic(ssbyz.Traffic{MeanGap: 4000, Count: 32})
//	report, _ := eng.Run(0)
//	for _, e := range report.Log(0).Committed() { fmt.Println(e.Index, e.Payload) }
//
// The deeper layers remain importable through this package's re-exported
// types; the experiment suite reproducing the paper's results lives behind
// RunExperiments and cmd/ssbyz-bench.
package ssbyz

import (
	"io"

	"ssbyz/internal/check"
	"ssbyz/internal/core"
	"ssbyz/internal/harness"
	"ssbyz/internal/indexed"
	"ssbyz/internal/protocol"
	"ssbyz/internal/pulse"
	"ssbyz/internal/sim"
	"ssbyz/internal/simnet"
	"ssbyz/internal/simtime"
	"ssbyz/internal/transient"
)

// Re-exported fundamental types. They alias the internal protocol
// vocabulary so user code can name them while the implementation layers
// stay internal.
type (
	// NodeID identifies one of the paper's n nodes (IDs are dense in
	// [0, N)); at most f of them are Byzantine at steady state.
	NodeID = protocol.NodeID
	// Value is an agreement value; the empty string is the paper's ⊥
	// (abort / no decision).
	Value = protocol.Value
	// Params carries n, f, d and derives every timing constant (Φ, Δ0,
	// Δrmv, Δv, Δagr, Δnode, Δreset, Δstb).
	Params = protocol.Params
	// Ticks is a duration in simulation ticks; d — the paper's message
	// delivery + processing bound — is typically 1000 ticks.
	Ticks = simtime.Duration
	// Violation is a failed check of one of the paper's proved
	// properties (Agreement, Validity, Timeliness-1..3, IA-*, TPS-*).
	Violation = check.Violation
)

// Bottom is the ⊥ value (abort / no decision).
const Bottom = protocol.Bottom

// Config describes a cluster under the paper's model: n nodes of which
// at most F are Byzantine (n > 3f), message delays bounded by D (the
// paper's d), and actual delays — the δ of the headline claim — drawn
// from [DelayMin, DelayMax].
//
// Deprecated: Config is the pre-Engine configuration struct, kept for the
// Simulation shim; new code passes the equivalent functional options
// (WithN, WithF, WithD, WithSeed, WithDelayBounds) to New.
type Config struct {
	// N is the number of nodes. F defaults to ⌊(N−1)/3⌋ (optimal).
	N int
	// F optionally lowers the fault bound below optimal.
	F int
	// D is the message delivery+processing bound in ticks (default 1000).
	D Ticks
	// Seed drives all randomness; identical seeds reproduce runs exactly.
	Seed int64
	// DelayMin/DelayMax bound actual message delays (default [D/2, D]).
	// Lowering them below D is how "the actual communication network
	// speed" of the paper's headline claim is modelled.
	DelayMin, DelayMax Ticks
}

// options translates the legacy Config into Engine options.
func (c Config) options() []Option {
	opts := []Option{WithSeed(c.Seed)}
	if c.N > 0 {
		opts = append(opts, WithN(c.N))
	}
	if c.F > 0 {
		opts = append(opts, WithF(c.F))
	}
	if c.D > 0 {
		opts = append(opts, WithD(c.D))
	}
	if c.DelayMin > 0 || c.DelayMax > 0 {
		opts = append(opts, WithDelayBounds(c.DelayMin, c.DelayMax))
	}
	return opts
}

// Adversary scripts a Byzantine node. Construct values with the
// constructors in adversaries.go; a nil Adversary in WithFaulty marks a
// crash-faulty node.
type Adversary = protocol.Node

// Decision is one correct node's return for a General: the decided value
// (or ⊥ on abort), its real and local return times, and the anchor τG
// the decision is timed against.
type Decision = sim.Decision

// Simulation is a deterministic world realizing the paper's model —
// bounded message delays, per-node drifting clocks, up to f Byzantine
// nodes. Configure (faults, scheduled agreements, transient corruption),
// then Run.
//
// Deprecated: Simulation is a thin shim over Engine, kept for existing
// callers; new code uses New with SimRuntime (the default) and
// OpenSession/Log handles.
type Simulation struct {
	eng    *Engine
	report *Report
}

// NewSimulation validates the config (the paper's n > 3f resilience
// precondition among the checks; failures wrap ErrBadParams) and prepares
// an empty scenario.
func NewSimulation(cfg Config) (*Simulation, error) {
	eng, err := New(cfg.options()...)
	if err != nil {
		return nil, err
	}
	return &Simulation{eng: eng}, nil
}

// Params returns the resolved protocol constants (n, f, d and the
// derived Δ bounds of the paper's Section 3).
func (s *Simulation) Params() Params { return s.eng.pp }

// WithFaulty marks node id Byzantine, driven by the given adversary (nil
// for a crashed node); the scenario may hold at most f = ⌊(n−1)/3⌋ of
// them. It returns s for chaining.
func (s *Simulation) WithFaulty(id NodeID, adv Adversary) *Simulation {
	s.eng.faulty[id] = adv
	return s
}

// WithConcurrentSlots turns every correct node into an indexed node with
// the given number of concurrent-invocation slots (the paper's footnote-9
// extension): one General may run up to that many agreements at once, the
// sending-validity criteria applying per slot. Schedule with
// ScheduleSlotAgreement and read results with Report.SlotDecisions.
func (s *Simulation) WithConcurrentSlots(slots int) *Simulation {
	if slots < 1 {
		slots = 1
	}
	s.eng.sessions = slots
	s.eng.newNode = func() protocol.Node { return indexed.NewNode(slots) }
	return s
}

// ScheduleSlotAgreement schedules General g to initiate v in the given
// concurrent slot at virtual time at (requires WithConcurrentSlots).
func (s *Simulation) ScheduleSlotAgreement(slot int, g NodeID, v Value, at Ticks) *Simulation {
	s.eng.manual = append(s.eng.manual, sim.Initiation{
		At: simtime.Real(at), G: g, Value: v, Slot: slot,
	})
	return s
}

// SlotDecisions returns the correct nodes' decide-returns for General g
// in one concurrent slot (the paper's footnote-9 extension), with the
// slot namespace stripped from values.
func (r *Report) SlotDecisions(g NodeID, slot int) []Decision {
	var out []Decision
	for _, d := range r.res.Decisions(g) {
		if !d.Decided {
			continue
		}
		sl, inner, ok := indexed.ParseSlotValue(d.Value)
		if !ok || sl != slot {
			continue
		}
		d.Value = inner
		out = append(out, d)
	}
	return out
}

// WithPulseSynchronization turns every correct node into a pulse node:
// the cluster fires recurring synchronized pulses (the paper's companion
// [6] layer built atop ss-Byz-Agree), each cycle inheriting the
// agreement's 3d decision skew (Timeliness-1a). cycle is the local-time
// spacing between pulses; values below the legal minimum are raised to
// it. Retrieve fired pulses with Report.Pulses.
func (s *Simulation) WithPulseSynchronization(cycle Ticks) *Simulation {
	s.eng.newNode = func() protocol.Node {
		return pulse.NewNode(pulse.Config{Cycle: cycle})
	}
	return s
}

// Pulse is one fired pulse at one node of the companion [6]
// pulse-synchronization layer; pulses of one cycle land within the
// agreement's 3d skew (Timeliness-1a).
type Pulse struct {
	Node  NodeID
	Cycle int
	// RT is the virtual real time of the pulse.
	RT simtime.Real
}

// Pulses returns every pulse fired by correct nodes of the companion [6]
// layer, grouped by cycle; each cycle's pulses inherit the agreement's
// 3d skew bound (Timeliness-1a), which experiment F4 measures.
func (r *Report) Pulses() map[int][]Pulse {
	out := make(map[int][]Pulse)
	for _, ev := range r.res.Rec.ByKind(protocol.EvPulse) {
		if !r.res.IsCorrect(ev.Node) {
			continue
		}
		out[ev.K] = append(out[ev.K], Pulse{Node: ev.Node, Cycle: ev.K, RT: ev.RT})
	}
	return out
}

// WithTransientFault corrupts every node's state to an arbitrary
// (seed-determined) configuration at the moment the run begins — the
// paper's post-transient scenario. Severity in (0,1] scales how much of
// the state is corrupted; 1 corrupts everything.
func (s *Simulation) WithTransientFault(seed int64, severity float64) *Simulation {
	s.eng.corrupt = func(w *simnet.World) {
		transient.Corrupt(w, transient.Config{Seed: seed, Severity: severity})
	}
	return s
}

// ScheduleAgreement schedules General g to initiate agreement on v at
// virtual time at. The initiation is refused (and recorded in the report)
// if it violates the sending-validity criteria IG1–IG3.
func (s *Simulation) ScheduleAgreement(g NodeID, v Value, at Ticks) *Simulation {
	s.eng.manual = append(s.eng.manual, sim.Initiation{
		At: simtime.Real(at), G: g, Value: v,
	})
	return s
}

// Run executes the simulation for the given virtual duration (0 means
// three Δagr agreement spans past the last scheduled initiation) and
// returns the report. Run may be called once per Simulation.
func (s *Simulation) Run(runFor Ticks) (*Report, error) {
	if s.report != nil {
		return s.report, nil
	}
	sr, err := s.eng.Run(runFor)
	if err != nil {
		return nil, err
	}
	s.report = sr.Report
	return s.report, nil
}

// Report exposes a finished run's outcomes and the checks of the paper's
// proved properties (Agreement, Validity, Timeliness, IA-*, TPS-*).
type Report struct {
	res *sim.Result
}

// Decisions returns every correct node's decide-or-abort return for
// General g in node order (absent nodes never returned); the Agreement
// property requires the decided values to be identical. The slice is the
// caller's to keep (the memoized extract underneath is copied here, so
// mutating it cannot poison later queries).
func (r *Report) Decisions(g NodeID) []Decision {
	cached := r.res.Decisions(g)
	out := make([]Decision, len(cached))
	copy(out, cached)
	return out
}

// Unanimous reports whether every correct node returned exactly once for
// General g, deciding v — the all-decide case of the Agreement property.
// It is meant for single-agreement runs; for recurring agreements use
// Verified, which scopes to one initiation.
func (r *Report) Unanimous(g NodeID, v Value) bool {
	decs := r.res.Decisions(g)
	if len(decs) != len(r.res.Correct) {
		return false
	}
	for _, d := range decs {
		if !d.Decided || d.Value != v {
			return false
		}
	}
	return true
}

// DecisionsFor returns the decide-returns of correct nodes for General g
// carrying value v (recurring agreements — spaced by the paper's Δ0 and
// Δv minima — produce one entry per node per agreed initiation).
func (r *Report) DecisionsFor(g NodeID, v Value) []Decision {
	var out []Decision
	for _, d := range r.res.Decisions(g) {
		if d.Decided && d.Value == v {
			out = append(out, d)
		}
	}
	return out
}

// Verified reports whether the initiation of v by General g at virtual
// time t0 completed with full validity: every correct node decided v
// within the paper's window [t0−d, t0+4d].
func (r *Report) Verified(g NodeID, v Value, t0 Ticks) bool {
	pp := r.res.Scenario.Params
	nodes := make(map[NodeID]bool)
	for _, d := range r.DecisionsFor(g, v) {
		if d.RT >= simtime.Real(t0-pp.D) && d.RT <= simtime.Real(t0+4*pp.D) {
			nodes[d.Node] = true
		}
	}
	return len(nodes) == len(r.res.Correct)
}

// InitiationErrors returns the sending-validity refusals (IG1–IG3) hit by
// scheduled initiations, keyed by schedule index.
func (r *Report) InitiationErrors() map[int]error { return r.res.InitErrs }

// Check runs the full property battery (Agreement, Timeliness, IA/TPS
// bounds) for General g and returns any violations.
func (r *Report) Check(g NodeID) []Violation { return check.All(r.res, g) }

// CheckValidity additionally verifies the Validity window for a correct
// General that initiated v at virtual time t0.
func (r *Report) CheckValidity(g NodeID, t0 Ticks, v Value) []Violation {
	return check.Validity(r.res, g, simtime.Real(t0), v)
}

// Messages returns the total message count of the run — the quantity
// E10 and S1 track against the paper's O(n²)-per-primitive bound.
func (r *Report) Messages() int64 {
	if r.res.World == nil {
		// Live-runtime reports have no simulated World; the transport's
		// frame counters live in ScenarioReport.Live.Stats instead.
		return 0
	}
	total, _ := r.res.World.MessageCount()
	return total
}

// NewCorrectNode returns a fresh correct-node state machine — the full
// ss-Byz-Agree stack of Fig. 1 (sending-validity criteria IG1–IG3,
// Blocks K/L/Q/R) over Initiator-Accept and msgd-broadcast — for callers
// embedding the protocol behind their own transport. Most users should
// prefer Simulation or LiveCluster.
func NewCorrectNode() *core.Node { return core.NewNode() }

// ExperimentOptions tunes RunExperiments — the sweeps that re-measure the
// paper's proved bounds. Set Workers to fan independent simulation cells
// across goroutines (default runtime.GOMAXPROCS(0)); the report is
// byte-identical for every Workers value.
type ExperimentOptions = harness.Options

// ExperimentSuite is the machine-readable form of a suite run: options,
// per-experiment tables, and the total of the paper's property-bound
// violations, shaped for the BENCH_*.json perf-trajectory artifacts
// (every table deterministic; wall_ms per result is the one
// machine-varying field — see DESIGN.md §5).
type ExperimentSuite = harness.Suite

// ExperimentResult is one experiment's tables, notes, and count of
// violations of the paper's proved properties — the element type of
// ExperimentSuite.Results.
type ExperimentResult = harness.Result

// RunExperiments executes the full reproduction suite (experiments
// E1–E10, figures F1–F4, ablation A1, scaling workload S1, and the
// randomized adversarial campaign S2 of DESIGN.md §4) and writes each
// result to w. It returns the total number of violations of the paper's
// proved properties (0 for a faithful build).
func RunExperiments(w io.Writer, opt ExperimentOptions) (int, error) {
	suite, err := RunExperimentsSuite(w, opt)
	return suite.Violations, err
}

// RunExperimentsSuite is RunExperiments returning the machine-readable
// suite — the paper's re-measured bounds as data — alongside the
// human-readable report written to w.
func RunExperimentsSuite(w io.Writer, opt ExperimentOptions) (*ExperimentSuite, error) {
	results, err := harness.RunAll(w, opt)
	return harness.NewSuite(opt, results), err
}
