module ssbyz

go 1.24
