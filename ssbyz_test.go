package ssbyz_test

import (
	"strings"
	"testing"
	"time"

	"ssbyz"
)

func TestSimulationQuickstart(t *testing.T) {
	s, err := ssbyz.NewSimulation(ssbyz.Config{N: 7, Seed: 1})
	if err != nil {
		t.Fatalf("NewSimulation: %v", err)
	}
	d := s.Params().D
	s.ScheduleAgreement(0, "launch", 2*d)
	report, err := s.Run(0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !report.Unanimous(0, "launch") {
		t.Errorf("not unanimous: %+v", report.Decisions(0))
	}
	if vs := report.Check(0); len(vs) != 0 {
		t.Errorf("property violations: %v", vs)
	}
	if vs := report.CheckValidity(0, 2*d, "launch"); len(vs) != 0 {
		t.Errorf("validity violations: %v", vs)
	}
	if report.Messages() == 0 {
		t.Error("no messages counted")
	}
}

func TestSimulationRejectsBadConfig(t *testing.T) {
	cases := []ssbyz.Config{
		{N: 3, F: 1},  // violates n > 3f
		{N: 7, F: 10}, // F above optimal bound
	}
	for _, cfg := range cases {
		if _, err := ssbyz.NewSimulation(cfg); err == nil {
			t.Errorf("NewSimulation(%+v) accepted an invalid config", cfg)
		}
	}
}

func TestSimulationFaultyGeneralNoSplit(t *testing.T) {
	s, err := ssbyz.NewSimulation(ssbyz.Config{N: 7, Seed: 3})
	if err != nil {
		t.Fatalf("NewSimulation: %v", err)
	}
	d := s.Params().D
	s.WithFaulty(0, ssbyz.EquivocatingGeneral(2*d, "a", "b"))
	s.WithFaulty(6, ssbyz.Colluder())
	report, err := s.Run(5 * s.Params().DeltaAgr())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if vs := report.Check(0); len(vs) != 0 {
		t.Errorf("violations under equivocation: %v", vs)
	}
	values := make(map[ssbyz.Value]bool)
	for _, dec := range report.Decisions(0) {
		if dec.Decided {
			values[dec.Value] = true
		}
	}
	if len(values) > 1 {
		t.Errorf("value split: %v", values)
	}
}

func TestSimulationTransientRecovery(t *testing.T) {
	s, err := ssbyz.NewSimulation(ssbyz.Config{N: 7, Seed: 4})
	if err != nil {
		t.Fatalf("NewSimulation: %v", err)
	}
	pp := s.Params()
	s.WithTransientFault(99, 1.0)
	// Initiate well after Δstb: the system must have converged by then.
	at := pp.DeltaStb() + 2*pp.D
	s.ScheduleAgreement(0, "recovered", at)
	report, err := s.Run(at + 3*pp.DeltaAgr())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if errs := report.InitiationErrors(); len(errs) != 0 {
		t.Fatalf("initiation refused after Δstb: %v", errs)
	}
	if !report.Unanimous(0, "recovered") {
		t.Errorf("no unanimous agreement after stabilization: %+v", report.Decisions(0))
	}
	if vs := report.CheckValidity(0, at, "recovered"); len(vs) != 0 {
		t.Errorf("validity violations after stabilization: %v", vs)
	}
}

func TestSimulationIG1Refusal(t *testing.T) {
	s, err := ssbyz.NewSimulation(ssbyz.Config{N: 4, Seed: 5})
	if err != nil {
		t.Fatalf("NewSimulation: %v", err)
	}
	d := s.Params().D
	s.ScheduleAgreement(0, "one", 2*d)
	s.ScheduleAgreement(0, "two", 3*d) // < Δ0 after the first
	report, err := s.Run(0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	errs := report.InitiationErrors()
	if len(errs) != 1 {
		t.Fatalf("want exactly 1 refusal, got %v", errs)
	}
	if err, ok := errs[1]; !ok || !strings.Contains(err.Error(), "IG1") {
		t.Errorf("refusal = %v, want IG1 on schedule index 1", errs)
	}
}

func TestRunExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite is seconds-long; skipped in -short")
	}
	var sb strings.Builder
	violations, err := ssbyz.RunExperiments(&sb, ssbyz.ExperimentOptions{Quick: true})
	if err != nil {
		t.Fatalf("RunExperiments: %v", err)
	}
	if violations != 0 {
		t.Errorf("suite reported %d violations\n%s", violations, sb.String())
	}
	if !strings.Contains(sb.String(), "## E5 ") {
		t.Error("output missing the headline experiment E5")
	}
}

func TestLiveClusterEndToEnd(t *testing.T) {
	lc, err := ssbyz.NewLiveCluster(ssbyz.LiveConfig{N: 4, Seed: 6})
	if err != nil {
		t.Fatalf("NewLiveCluster: %v", err)
	}
	defer lc.Stop()
	if err := lc.Initiate(0, "hello"); err != nil {
		t.Fatalf("Initiate: %v", err)
	}
	v, err := lc.Await(0, 10*time.Second)
	if err != nil {
		t.Fatalf("Await: %v", err)
	}
	if v != "hello" {
		t.Errorf("decided %q, want \"hello\"", v)
	}
}
