package ssbyz_test

// Tests for the Engine facade: the unified service API, its sentinel
// errors, and the compatibility of the deprecated Simulation shim with
// the engine it now wraps.

import (
	"errors"
	"testing"

	"ssbyz"
)

func TestEngineSentinelErrors(t *testing.T) {
	// n ≤ 3f violates the paper's resilience precondition.
	if _, err := ssbyz.New(ssbyz.WithN(7), ssbyz.WithF(3)); !errors.Is(err, ssbyz.ErrBadParams) {
		t.Errorf("New(n=7,f=3) error = %v, want ErrBadParams", err)
	}
	if _, err := ssbyz.New(ssbyz.WithSessions(0)); !errors.Is(err, ssbyz.ErrBadParams) {
		t.Errorf("WithSessions(0) error = %v, want ErrBadParams", err)
	}
	if _, err := ssbyz.NewSimulation(ssbyz.Config{N: 6, F: 2}); !errors.Is(err, ssbyz.ErrBadParams) {
		t.Errorf("NewSimulation(n=6,f=2) error = %v, want ErrBadParams", err)
	}

	eng, err := ssbyz.New(ssbyz.WithN(7), ssbyz.WithSessions(2))
	if err != nil {
		t.Fatal(err)
	}
	// The session limit is the configured footnote-9 slot count.
	if _, err := eng.OpenSession(0); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.OpenSession(0); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.OpenSession(0); !errors.Is(err, ssbyz.ErrSessionLimit) {
		t.Errorf("third OpenSession error = %v, want ErrSessionLimit", err)
	}
	// A General is scripted or log-driven, never both.
	if _, err := eng.Log(0); !errors.Is(err, ssbyz.ErrBadParams) {
		t.Errorf("Log after OpenSession error = %v, want ErrBadParams", err)
	}
	if _, err := eng.Log(1); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.OpenSession(1); !errors.Is(err, ssbyz.ErrBadParams) {
		t.Errorf("OpenSession after Log error = %v, want ErrBadParams", err)
	}
	// Faulty Generals can neither be scripted nor serve logs.
	eng2, _ := ssbyz.New(ssbyz.WithN(7), ssbyz.WithFaultyNode(2, nil))
	if _, err := eng2.OpenSession(2); !errors.Is(err, ssbyz.ErrBadParams) {
		t.Errorf("OpenSession(faulty) error = %v, want ErrBadParams", err)
	}
	// Stopped engines accept nothing further.
	eng2.Stop()
	if _, err := eng2.Run(0); !errors.Is(err, ssbyz.ErrStopped) {
		t.Errorf("Run after Stop error = %v, want ErrStopped", err)
	}
	// Simulator engines refuse interactive socket calls.
	eng3, _ := ssbyz.New(ssbyz.WithN(4))
	if err := eng3.Start(); !errors.Is(err, ssbyz.ErrBadParams) {
		t.Errorf("Start on sim runtime error = %v, want ErrBadParams", err)
	}
}

// TestEngineSessionAgreement drives one agreement through the new
// Session API and checks Validity and the battery, mirroring the legacy
// quickstart.
func TestEngineSessionAgreement(t *testing.T) {
	eng, err := ssbyz.New(ssbyz.WithN(7), ssbyz.WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	s, err := eng.OpenSession(0)
	if err != nil {
		t.Fatal(err)
	}
	d := eng.Params().D
	if err := s.ProposeAt("launch", 2*d); err != nil {
		t.Fatal(err)
	}
	report, err := eng.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.InitiationErrors()) != 0 {
		t.Fatalf("initiation refused: %v", report.InitiationErrors())
	}
	if !report.Unanimous(0, "launch") {
		t.Fatalf("not unanimous on %q: %v", "launch", report.Decisions(0))
	}
	if got := s.Decisions(report.Report); len(got) != len(report.Decisions(0)) {
		t.Fatalf("session decisions = %d, want %d", len(got), len(report.Decisions(0)))
	}
	if v := report.Check(0); len(v) != 0 {
		t.Fatalf("battery violations: %v", v)
	}
}

// TestEngineReplicatedLog runs the replicated-log facade end to end on
// the simulator: Poisson traffic over 4 concurrent sessions, everything
// commits in a total order, and the per-session battery is clean.
func TestEngineReplicatedLog(t *testing.T) {
	eng, err := ssbyz.New(ssbyz.WithN(7), ssbyz.WithSessions(4), ssbyz.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	log, err := eng.Log(0)
	if err != nil {
		t.Fatal(err)
	}
	d := eng.Params().D
	if err := log.ProposeAt("genesis", d); err != nil {
		t.Fatal(err)
	}
	if err := log.GenerateTraffic(ssbyz.Traffic{Seed: 5, Start: 2 * d, MeanGap: 4 * d, Count: 10}); err != nil {
		t.Fatal(err)
	}
	report, err := eng.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	lr := report.Log(0)
	if lr == nil {
		t.Fatal("no log report for General 0")
	}
	st := lr.Stats()
	if st.Committed != 11 || st.Failed != 0 {
		t.Fatalf("committed=%d failed=%d dropped=%d, want 11/0", st.Committed, st.Failed, st.Dropped)
	}
	if lr.Committed()[0].Payload != "genesis" {
		t.Fatalf("log head = %q, want the first proposal", lr.Committed()[0].Payload)
	}
	// Total order: anchors strictly grow entry to entry (Timeliness-4
	// keeps distinct agreements > 4d apart).
	prev := lr.Committed()[0].Anchor
	for _, e := range lr.Committed()[1:] {
		if e.Anchor <= prev {
			t.Fatalf("log order not strictly anchor-ordered at entry %d", e.Index)
		}
		prev = e.Anchor
	}
	if v := report.CheckService(); len(v) != 0 {
		t.Fatalf("service battery violations (%d): %v", len(v), v[0])
	}
	// Run memoizes.
	again, err := eng.Run(0)
	if err != nil || again != report {
		t.Fatalf("second Run = (%p, %v), want the memoized report", again, err)
	}
}

// TestSimulationShimMatchesEngine is the old-API differential: the
// deprecated Simulation builder must produce exactly the decisions of
// the equivalent Engine run — it is a shim over the same engine, so the
// single-agreement behavior of the pre-service facade is unchanged.
func TestSimulationShimMatchesEngine(t *testing.T) {
	cfg := ssbyz.Config{N: 7, Seed: 9}
	sim, err := ssbyz.NewSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := sim.Params().D
	sim.ScheduleAgreement(0, "v", 2*d)
	legacy, err := sim.Run(0)
	if err != nil {
		t.Fatal(err)
	}

	eng, err := ssbyz.New(ssbyz.WithN(7), ssbyz.WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	s, err := eng.OpenSession(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ProposeAt("v", 2*d); err != nil {
		t.Fatal(err)
	}
	modern, err := eng.Run(0)
	if err != nil {
		t.Fatal(err)
	}

	a, b := legacy.Decisions(0), modern.Decisions(0)
	if len(a) != len(b) {
		t.Fatalf("decision counts differ: legacy %d vs engine %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs: legacy %+v vs engine %+v", i, a[i], b[i])
		}
	}
	if legacy.Messages() != modern.Messages() {
		t.Fatalf("message counts differ: legacy %d vs engine %d", legacy.Messages(), modern.Messages())
	}
}
