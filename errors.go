package ssbyz

import "errors"

// Sentinel errors of the facade, matchable with errors.Is. Construction
// and runtime errors across Engine, Simulation, and the cluster types
// all wrap one of these, so callers branch on the class — a parameter
// outside the paper's model, a stopped engine, an exhausted footnote-9
// slot budget — without parsing messages.
var (
	// ErrBadParams reports a configuration outside the paper's model —
	// above all the n > 3f resilience precondition Byzantine agreement
	// requires, but also malformed delays, workloads, or an operation the
	// selected runtime cannot perform.
	ErrBadParams = errors.New("ssbyz: bad parameters")
	// ErrStopped reports an operation against an engine or cluster that
	// already ran or was stopped — the self-stabilizing protocol keeps
	// dense timer traffic alive until teardown, so a stopped runtime
	// accepts nothing further.
	ErrStopped = errors.New("ssbyz: engine stopped")
	// ErrSessionLimit reports exhaustion of the configured concurrent
	// agreement sessions: the footnote-9 extension multiplexes a fixed
	// number of indexed invocations per General, and each one applies the
	// sending-validity criteria IG1–IG3 independently.
	ErrSessionLimit = errors.New("ssbyz: concurrent session limit reached")
)
