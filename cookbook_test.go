package ssbyz_test

// This file pins the README "Scenario cookbook" recipes: each test is the
// corresponding recipe, kept compiling and passing so the documentation
// cannot rot. If a change here is needed, update README.md in the same
// commit.

import (
	"testing"
	"time"

	"ssbyz"
	"ssbyz/internal/clock"
	"ssbyz/internal/ops"
)

// Recipe 1: composite attack — equivocating General who also colludes.
func TestCookbookCompositeAttack(t *testing.T) {
	sim, err := ssbyz.NewSimulation(ssbyz.Config{N: 7, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := sim.Params().D
	sim.WithFaulty(5, ssbyz.ComposeAdversaries(
		ssbyz.EquivocatingGeneral(3*d, "left", "right"),
		ssbyz.LateColluder(0, 2*d),
	)).ScheduleAgreement(0, "launch", 2*d)
	report, err := sim.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Unanimous(0, "launch") {
		t.Fatal("agreement failed under the composite attack")
	}
	if vs := report.Check(0); len(vs) != 0 {
		t.Fatalf("battery violations: %v", vs)
	}
}

// Recipe 2: rolling partition — the network silences the traitor.
func TestCookbookRollingPartition(t *testing.T) {
	d := ssbyz.Time(1000) // default tick value of the paper's d
	sp := ssbyz.Scenario{
		N: 7, Seed: 9,
		Adversaries: []ssbyz.ScenarioAdversary{
			{Node: 5, Kind: "equivocator", Values: []ssbyz.Value{"a", "b"}, At: 3000}},
		Conditions: []ssbyz.NetworkCondition{
			{Kind: ssbyz.ConditionJitter, From: 2 * d, Until: 9 * d, Jitter: 500},
			{Kind: ssbyz.ConditionPartition, From: 5 * d, Until: 11 * d, Nodes: []ssbyz.NodeID{5}},
		},
		Script: []ssbyz.ScenarioInitiation{{At: 2 * d, G: 0, Value: "v"}},
	}
	rep, err := ssbyz.RunScenario(sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("battery violations: %v", rep.Violations)
	}
}

// Recipe 3: churn during convergence + staged turncoat.
func TestCookbookChurnWithStagedTurncoat(t *testing.T) {
	sp := ssbyz.Scenario{
		N: 7, Seed: 4,
		Adversaries: []ssbyz.ScenarioAdversary{{
			Node: 6, Kind: "staged",
			Parts: []ssbyz.ScenarioAdversary{
				{Kind: "crash"},              // correct-looking silence…
				{Kind: "yeasayer", At: 4000}, // …then amplifies everything
			}}},
		Conditions: []ssbyz.NetworkCondition{
			{Kind: ssbyz.ConditionChurn, From: 3000, Until: 9000, Nodes: []ssbyz.NodeID{6}}},
		Script: []ssbyz.ScenarioInitiation{{At: 2000, G: 0, Value: "v"}},
	}
	rep, err := ssbyz.RunScenario(sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("battery violations: %v", rep.Violations)
	}
}

// Recipe 4: randomized campaign (reduced seed range here; S2 is the real
// thing).
func TestCookbookRandomizedCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a mini campaign; skipped in -short")
	}
	for seed := int64(0); seed < 20; seed++ {
		rep, err := ssbyz.RunScenario(ssbyz.GenerateScenario(seed, 7))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(rep.Violations) > 0 {
			t.Fatalf("seed %d: counterexample! %v", seed, rep.Violations)
		}
	}
}

// Recipe 5: minimize + replay (the ssbyz-bench -replay loop, in-process).
func TestCookbookMinimizeAndReplay(t *testing.T) {
	sp := ssbyz.GenerateScenario(3, 7)
	anyDecision := func(c ssbyz.Scenario) bool {
		rep, err := ssbyz.RunScenario(c)
		if err != nil {
			return false
		}
		for _, init := range c.Script {
			if len(rep.Report.DecisionsFor(init.G, init.Value)) > 0 {
				return true
			}
		}
		return false
	}
	if !anyDecision(sp) {
		t.Skip("scenario decided nothing; predicate vacuous")
	}
	min := ssbyz.MinimizeScenario(sp, anyDecision)
	rep, err := ssbyz.ReplayScenario(min.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !anyDecision(rep.Spec) {
		t.Fatal("replayed minimized spec lost the behavior")
	}
}

// Recipe 6: byte-level attacks on the live wire — a virtual-runtime spec
// with a WAN delay matrix, duplication, and a byte corrupter on the
// faulty node's NIC; the per-class counters prove the attacks were
// injected and the battery proves the defenses held.
func TestCookbookLiveWireAttacks(t *testing.T) {
	d := ssbyz.Time(1000) // default tick value of the paper's d
	sp := ssbyz.Scenario{
		N: 4, Seed: 11, Runtime: ssbyz.RuntimeVirtual,
		DelayMin: 2, DelayMax: 20,
		Adversaries: []ssbyz.ScenarioAdversary{{Node: 3, Kind: "yeasayer"}},
		Conditions: []ssbyz.NetworkCondition{
			{Kind: ssbyz.ConditionWAN, From: 0, Until: 100 * d,
				Groups: [][]ssbyz.NodeID{{0, 1}, {2, 3}},
				Matrix: [][]ssbyz.Ticks{{0, 300}, {250, 0}}, Jitter: 100},
			{Kind: ssbyz.ConditionDuplicate, From: 0, Until: 100 * d, Copies: 2},
			{Kind: ssbyz.ConditionCorrupt, From: 0, Until: 100 * d,
				Nodes: []ssbyz.NodeID{3}, Stride: 2},
		},
		Script: []ssbyz.ScenarioInitiation{{At: 2 * d, G: 0, Value: "wan"}},
		RunFor: 100 * ssbyz.Ticks(d),
	}
	rep, err := ssbyz.RunScenario(sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("battery violations: %v", rep.Violations)
	}
	if rep.Live == nil {
		t.Fatal("live runtime report missing")
	}
	if rep.Live.Stats.CorruptFrames == 0 || rep.Live.Stats.DupFrames == 0 {
		t.Fatalf("attacks were not injected: %+v", rep.Live.Stats)
	}
}

// Recipe 7: in-situ transient fault — a scripted corruption of a RUNNING
// node mid-run, with the runner measuring re-stabilization against the
// paper's Δstb = 2Δreset budget before a post-window probe agreement.
func TestCookbookInSituTransientFault(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a Δstb-length virtual campaign; skipped in -short")
	}
	sp := ssbyz.Scenario{
		N: 4, Seed: 7, Runtime: ssbyz.RuntimeVirtual,
		DelayMin: 1, DelayMax: 20,
	}
	pp := sp.Params()
	pre := ssbyz.Time(2 * pp.D)
	faultAt := pre + ssbyz.Time(3*pp.DeltaAgr())
	postAt := faultAt + ssbyz.Time(pp.DeltaStb()+pp.D)
	sp.Script = []ssbyz.ScenarioInitiation{
		{At: pre, G: 0, Value: "pre"},
		{At: postAt, G: 2, Value: "post"},
	}
	sp.Faults = []ssbyz.ScenarioFault{{At: faultAt, Node: 1, Seed: 99, SeverityPermille: 1000}}
	sp.RunFor = ssbyz.Ticks(postAt) + 3*pp.DeltaAgr()
	rep, err := ssbyz.RunScenario(sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("battery violations: %v", rep.Violations)
	}
	if rep.Live == nil || len(rep.Live.Restab) != 1 {
		t.Fatalf("restab samples missing: %+v", rep.Live)
	}
	rs := rep.Live.Restab[0]
	if rs.Ticks <= 0 || rs.Ticks > pp.DeltaStb() {
		t.Fatalf("re-stabilization %d ticks outside (0, Δstb=%d]", rs.Ticks, pp.DeltaStb())
	}
}

// Recipe 8: rolling replacement as a transient fault — the operations
// campaign under virtual time, judged on the paper's corollary: the
// rolled node re-stabilizes within Δstb = 2Δreset, the old
// incarnation's replay is rejected by every peer, and the
// replicated-log traffic rides through the roll.
func TestCookbookRollingReplacement(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full operations campaign; skipped in -short")
	}
	rep, err := ops.RunCampaign(ops.CampaignConfig{
		Spec:  ops.QuickSpec(4, 2, 250, 7), // n=4, roll node 2, d=250, seed 7
		Clock: clock.NewFake(time.Time{}),  // virtual time: deterministic
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rolls) != 1 {
		t.Fatalf("want 1 roll, got %d", len(rep.Rolls))
	}
	rr := rep.Rolls[0]
	if !rr.WithinDeltaStb {
		t.Fatalf("roll missed the Δstb budget: restab=%d ticks", rr.RestabTicks)
	}
	if rr.EpochDropPeers != rep.Params.N-1 {
		t.Fatalf("old-incarnation replay rejected by %d/%d peers", rr.EpochDropPeers, rep.Params.N-1)
	}
	if rep.Committed != 8 || rep.Failed != 0 || rep.Dropped != 0 {
		t.Fatalf("workload: committed=%d failed=%d dropped=%d", rep.Committed, rep.Failed, rep.Dropped)
	}
}
