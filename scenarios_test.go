package ssbyz_test

import (
	"reflect"
	"testing"

	"ssbyz"
)

func TestGenerateRunReplayScenario(t *testing.T) {
	sp := ssbyz.GenerateScenario(7, 7)
	rep, err := ssbyz.RunScenario(sp)
	if err != nil {
		t.Fatalf("RunScenario: %v", err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("generated scenario violates the battery: %v", rep.Violations)
	}
	// Replay from the JSON artifact: identical verdict and messages.
	rep2, err := ssbyz.ReplayScenario(sp.Marshal())
	if err != nil {
		t.Fatalf("ReplayScenario: %v", err)
	}
	if !reflect.DeepEqual(rep.Violations, rep2.Violations) {
		t.Fatalf("replay verdict differs: %v vs %v", rep.Violations, rep2.Violations)
	}
	if rep.Report.Messages() != rep2.Report.Messages() {
		t.Fatalf("replay message count differs: %d vs %d",
			rep.Report.Messages(), rep2.Report.Messages())
	}
}

func TestReplayScenarioRejectsGarbage(t *testing.T) {
	if _, err := ssbyz.ReplayScenario([]byte("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ssbyz.ReplayScenario([]byte(`{"n":6,"f":2}`)); err == nil {
		t.Error("n ≤ 3f spec accepted")
	}
}

func TestMinimizeScenarioShrinksFailingSpec(t *testing.T) {
	sp := ssbyz.GenerateScenario(7, 7)
	// A deliberately weakened "checker": any decision at all fails. The
	// minimized spec must still decide something and be no bigger.
	decides := func(c ssbyz.Scenario) bool {
		rep, err := ssbyz.RunScenario(c)
		if err != nil {
			return false
		}
		for _, init := range c.Script {
			if len(rep.Report.DecisionsFor(init.G, init.Value)) > 0 {
				return true
			}
		}
		return false
	}
	if !decides(sp) {
		t.Skip("generated scenario decided nothing; predicate vacuous")
	}
	min := ssbyz.MinimizeScenario(sp, decides)
	if !decides(min) {
		t.Fatal("minimized scenario no longer fails the predicate")
	}
	if len(min.Adversaries) > len(sp.Adversaries) || len(min.Conditions) > len(sp.Conditions) {
		t.Fatalf("minimize grew the spec: %+v -> %+v", sp, min)
	}
}

func TestFacadeAdversaryCombinatorsHoldTheBattery(t *testing.T) {
	// A composed + staged + adaptive adversary population, driven through
	// the Simulation facade: the paper's battery must hold regardless.
	sim, err := ssbyz.NewSimulation(ssbyz.Config{N: 7, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pp := sim.Params()
	sim.WithFaulty(4, ssbyz.ComposeAdversaries(ssbyz.Colluder(), ssbyz.MirrorVoter())).
		WithFaulty(5, ssbyz.StagedAdversary(
			ssbyz.AdversaryStage{Adv: ssbyz.Crashed()},
			ssbyz.AdversaryStage{At: 3 * pp.D, Adv: ssbyz.EdgeSupporter()},
		)).
		ScheduleAgreement(0, "launch", 2*pp.D)
	rep, err := sim.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Unanimous(0, "launch") {
		t.Fatal("agreement failed under combined adversaries")
	}
	if vs := rep.Check(0); len(vs) != 0 {
		t.Fatalf("battery violations: %v", vs)
	}
}

func TestFacadeAdaptiveAdversaryArms(t *testing.T) {
	sim, err := ssbyz.NewSimulation(ssbyz.Config{N: 7, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	pp := sim.Params()
	sim.WithFaulty(6, ssbyz.AdaptiveAdversary(0, nil, ssbyz.Colluder())).
		ScheduleAgreement(0, "go", 2*pp.D)
	rep, err := sim.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Unanimous(0, "go") {
		t.Fatal("agreement failed under an adaptive colluder")
	}
	if vs := rep.Check(0); len(vs) != 0 {
		t.Fatalf("battery violations: %v", vs)
	}
}

func TestRunScenarioWithExplicitConditions(t *testing.T) {
	// Hand-written spec: a jitter burst over everyone plus a partition
	// that isolates the faulty node mid-attack — the battery must hold.
	pp := ssbyz.GenerateScenario(1, 7).Params()
	d := ssbyz.Time(pp.D)
	sp := ssbyz.Scenario{
		N: 7, Seed: 9, DelayMin: pp.D / 2, DelayMax: pp.D,
		Adversaries: []ssbyz.ScenarioAdversary{{Node: 3, Kind: "yeasayer"}},
		Conditions: []ssbyz.NetworkCondition{
			{Kind: ssbyz.ConditionJitter, From: 0, Until: 10 * d, Jitter: pp.D / 2},
			{Kind: ssbyz.ConditionPartition, From: 3 * d, Until: 8 * d, Nodes: []ssbyz.NodeID{3}},
		},
		Script: []ssbyz.ScenarioInitiation{{At: 2 * d, G: 0, Value: "v"}},
	}
	rep, err := ssbyz.RunScenario(sp)
	if err != nil {
		t.Fatalf("RunScenario: %v", err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("battery violations under conditions: %v", rep.Violations)
	}
}
